//! Group configuration and the symmetric memory layout.
//!
//! HyperLoop relies on every replica having an *identical* layout for the
//! replicated state: the same offset means the same object on every node, so
//! one metadata image works for the whole group. [`SharedLayout`] captures
//! that replica-space map; the client keeps its own mirror at client-space
//! offsets.

use rnicsim::WQE_SIZE;

/// Images per replica block in the metadata payload (see [`crate::meta`]).
pub const IMAGES_PER_BLOCK: u64 = 5;

/// Bytes of one replica's image block.
pub const BLOCK_SIZE: u64 = IMAGES_PER_BLOCK * WQE_SIZE;

/// Group-wide tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupConfig {
    /// Bytes of replicated shared state (WAL region + database + control
    /// words), identical on every replica.
    pub shared_size: u64,
    /// Number of metadata generation slots (the reuse ring). Must exceed
    /// `window`.
    pub meta_slots: u32,
    /// Generations pre-posted per replica at setup and kept outstanding by
    /// the maintenance path.
    pub prepost_depth: u32,
    /// Maximum operations the client keeps in flight.
    pub window: u32,
    /// First generation number the group issues. Generations double as the
    /// op ids on every trace event and WQE `wr_id`, so multi-group setups
    /// (shards, migration targets) give each group a disjoint base to keep
    /// trace streams unambiguous. Must be a multiple of `meta_slots` so the
    /// modular slot arithmetic is unchanged.
    pub first_gen: u64,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            shared_size: 4 << 20,
            meta_slots: 64,
            prepost_depth: 128,
            window: 16,
            first_gen: 0,
        }
    }
}

impl GroupConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the window would overrun the metadata ring.
    pub fn validate(&self) {
        assert!(self.shared_size > 0, "empty shared region");
        assert!(
            self.window * 2 <= self.meta_slots,
            "window {} too large for {} metadata slots",
            self.window,
            self.meta_slots
        );
        assert!(
            self.prepost_depth >= self.window,
            "prepost depth below window"
        );
        assert!(
            self.first_gen.is_multiple_of(self.meta_slots as u64),
            "first_gen {} must be a multiple of meta_slots {}",
            self.first_gen,
            self.meta_slots
        );
    }
}

/// The replica-space memory map of one group, identical on all replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedLayout {
    /// Base of the replicated shared state.
    pub shared_base: u64,
    /// Bytes of shared state.
    pub shared_size: u64,
    /// Base of the metadata generation ring.
    pub meta_base: u64,
    /// Bytes of one metadata slot (all blocks + result map, 64-aligned).
    pub meta_slot_size: u64,
    /// Number of metadata slots.
    pub meta_slots: u32,
    /// Replication group size (number of replicas in the chain).
    pub group_size: u32,
}

impl SharedLayout {
    /// Size of one metadata slot for a group of `group_size`.
    pub fn slot_size_for(group_size: u32) -> u64 {
        let raw = group_size as u64 * BLOCK_SIZE + group_size as u64 * 8;
        (raw + 63) & !63
    }

    /// Replica-space address of metadata slot `gen % meta_slots`.
    pub fn meta_slot(&self, gen: u64) -> u64 {
        self.meta_base + (gen % self.meta_slots as u64) * self.meta_slot_size
    }

    /// Address of image `img` in replica `idx`'s block of slot `gen`.
    pub fn image_addr(&self, gen: u64, idx: u32, img: u32) -> u64 {
        debug_assert!(idx < self.group_size);
        debug_assert!((img as u64) < IMAGES_PER_BLOCK);
        self.meta_slot(gen) + idx as u64 * BLOCK_SIZE + img as u64 * WQE_SIZE
    }

    /// Offset *within a slot* of the result map.
    pub fn result_map_offset(&self) -> u64 {
        self.group_size as u64 * BLOCK_SIZE
    }

    /// Address of replica `idx`'s result-map word in slot `gen`.
    pub fn result_word_addr(&self, gen: u64, idx: u32) -> u64 {
        self.meta_slot(gen) + self.result_map_offset() + idx as u64 * 8
    }

    /// Bytes of the result map.
    pub fn result_map_len(&self) -> u64 {
        self.group_size as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(gs: u32) -> SharedLayout {
        SharedLayout {
            shared_base: 0,
            shared_size: 1 << 20,
            meta_base: 1 << 20,
            meta_slot_size: SharedLayout::slot_size_for(gs),
            meta_slots: 64,
            group_size: gs,
        }
    }

    #[test]
    fn slot_size_is_aligned_and_sufficient() {
        for gs in 1..=8 {
            let s = SharedLayout::slot_size_for(gs);
            assert_eq!(s % 64, 0);
            assert!(s >= gs as u64 * BLOCK_SIZE + gs as u64 * 8);
        }
    }

    #[test]
    fn image_addresses_do_not_overlap() {
        let l = layout(3);
        let mut addrs = Vec::new();
        for idx in 0..3 {
            for img in 0..IMAGES_PER_BLOCK as u32 {
                addrs.push(l.image_addr(5, idx, img));
            }
        }
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], WQE_SIZE, "blocks must be densely packed");
        }
        // Result map sits after all blocks, inside the slot.
        let rm = l.result_word_addr(5, 2) + 8;
        assert!(rm <= l.meta_slot(5) + l.meta_slot_size);
    }

    #[test]
    fn slots_rotate_with_generation() {
        let l = layout(3);
        assert_eq!(l.meta_slot(0), l.meta_slot(64));
        assert_ne!(l.meta_slot(0), l.meta_slot(1));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn oversized_window_rejected() {
        let cfg = GroupConfig {
            window: 60,
            meta_slots: 64,
            ..GroupConfig::default()
        };
        cfg.validate();
    }
}
