//! The replicated write-ahead log (paper §5: `Append`,
//! `ExecuteAndAdvance`).
//!
//! Transactions are redo records ([`walog::LogRecord`]). [`ReplicatedWal`]
//! lays a log ring, a database area and a head pointer inside the group's
//! shared region and drives them with group primitives:
//!
//! * [`ReplicatedWal::append`] — one gWRITE (+ interleaved gFLUSH) lands the
//!   encoded record in every replica's log, durably;
//! * [`ReplicatedWal::execute_and_advance`] — per record entry, a gMEMCPY
//!   (+ gFLUSH) makes every replica's NIC copy the entry bytes from its log
//!   into its database; then a gWRITE (+ gFLUSH) advances the group-wide
//!   head pointer, which is what makes the transaction's application
//!   atomic across crashes: a record is either fully applied (head past it)
//!   or will be re-applied from the log on recovery.
//!
//! No replica CPU touches any of this.

use crate::group::GroupError;
use crate::ops::GroupOp;
use crate::transport::GroupTransport;
use rnicsim::{NicCtx, Payload};
use std::collections::VecDeque;
use std::fmt;
use walog::{LogEntry, LogRecord, WalRing};

/// Where the WAL's pieces live inside the shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalLayout {
    /// Start of the log ring.
    pub log_offset: u64,
    /// Bytes of log ring.
    pub log_size: u64,
    /// Start of the database area.
    pub db_offset: u64,
    /// Bytes of database area.
    pub db_size: u64,
    /// Offset of the 16-byte durable head pointer: ring head (u64) followed
    /// by the next unapplied transaction id (u64). The tx id lets recovery
    /// reject stale same-CRC records from previous ring laps.
    pub head_ptr_offset: u64,
}

impl WalLayout {
    /// A standard split of the first `shared_size` bytes: an 8-byte head
    /// pointer and lock words first, then `log_size` of ring, the rest
    /// database.
    ///
    /// # Panics
    ///
    /// Panics if the pieces do not fit.
    pub fn standard(shared_size: u64, log_size: u64, control_size: u64) -> Self {
        assert!(
            control_size >= 16,
            "control area too small for the head pointer"
        );
        assert!(
            control_size + log_size < shared_size,
            "log does not fit in the shared region"
        );
        WalLayout {
            head_ptr_offset: 0,
            log_offset: control_size,
            log_size,
            db_offset: control_size + log_size,
            db_size: shared_size - control_size - log_size,
        }
    }
}

/// Errors from the WAL data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The log ring is full; execute-and-advance (or truncate) first.
    LogFull,
    /// Not enough in-flight window for the operation; poll for acks first.
    WindowFull,
    /// A record entry's database offset is out of range.
    EntryOutOfDatabase,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::LogFull => f.write_str("log ring full"),
            WalError::WindowFull => f.write_str("in-flight window full"),
            WalError::EntryOutOfDatabase => f.write_str("entry offset outside database"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<GroupError> for WalError {
    fn from(e: GroupError) -> WalError {
        match e {
            GroupError::WindowFull => WalError::WindowFull,
            GroupError::OutOfRange => WalError::EntryOutOfDatabase,
        }
    }
}

#[derive(Debug)]
struct AppendedRecord {
    record: LogRecord,
    /// Physical offset of the record within the log region.
    log_off: u64,
    logical_end: u64,
}

/// Receipt of a WAL call: the transaction id plus the generations of the
/// group ops it issued (for latency accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReceipt {
    /// The transaction this receipt covers.
    pub tx_id: u64,
    /// Generations of the issued group operations, in order.
    pub gens: Vec<u64>,
}

/// The replicated write-ahead log driver (client side).
#[derive(Debug)]
pub struct ReplicatedWal {
    layout: WalLayout,
    ring: WalRing,
    next_tx: u64,
    queue: VecDeque<AppendedRecord>,
}

impl ReplicatedWal {
    /// Creates the driver over a [`WalLayout`].
    pub fn new(layout: WalLayout) -> Self {
        ReplicatedWal {
            layout,
            ring: WalRing::new(layout.log_size),
            next_tx: 0,
            queue: VecDeque::new(),
        }
    }

    /// The WAL layout.
    pub fn layout(&self) -> &WalLayout {
        &self.layout
    }

    /// Transactions appended but not yet executed.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Bytes a migration must copy to reproduce this WAL's durable state
    /// on a fresh chain: the control words, the whole log ring (live
    /// records sit at ring head..tail, which wraps — copying the ring in
    /// full keeps the transfer one contiguous prefix), and the database
    /// area. The shared region beyond `db_offset + db_size` is dead and
    /// skipped.
    pub fn copy_span(&self) -> u64 {
        self.layout.db_offset + self.layout.db_size
    }

    /// Live (appended, not yet truncated) bytes in the log ring — the
    /// head..tail span a migration's tail replay is bounded by.
    pub fn live_log_bytes(&self) -> u64 {
        self.ring.used()
    }

    /// Next transaction id to be assigned.
    pub fn next_tx_id(&self) -> u64 {
        self.next_tx
    }

    /// Appends a transaction: encodes the redo record and replicates it
    /// durably into every replica's log with one gWRITE+gFLUSH.
    ///
    /// # Errors
    ///
    /// [`WalError::LogFull`] if the ring has no room (execute first);
    /// [`WalError::WindowFull`] if the client cannot issue right now;
    /// [`WalError::EntryOutOfDatabase`] for entries beyond the database.
    pub fn append<T: GroupTransport>(
        &mut self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        entries: Vec<LogEntry>,
    ) -> Result<WalReceipt, WalError> {
        self.append_opts(client, ctx, entries, true)
    }

    /// [`ReplicatedWal::append`] with an explicit durability choice:
    /// `flush = false` replicates without the interleaved gFLUSH — the
    /// paper's §7 RAMCloud-like semantics (faster; lost on power failure).
    ///
    /// # Errors
    ///
    /// As [`ReplicatedWal::append`].
    pub fn append_opts<T: GroupTransport>(
        &mut self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        entries: Vec<LogEntry>,
        flush: bool,
    ) -> Result<WalReceipt, WalError> {
        for e in &entries {
            if e.offset + e.data.len() as u64 > self.layout.db_size {
                return Err(WalError::EntryOutOfDatabase);
            }
        }
        if !client.can_issue() {
            return Err(WalError::WindowFull);
        }
        let record = LogRecord {
            tx_id: self.next_tx,
            entries,
        };
        // The encoded record is wrapped (not copied) into a shared payload:
        // the issue path below is the only consumer, so the bytes are
        // produced exactly once.
        let bytes = Payload::from_vec(record.encode());
        let record_len = bytes.len() as u64;
        let Some(placement) = self.ring.reserve(record_len) else {
            return Err(WalError::LogFull);
        };
        let gen = client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: self.layout.log_offset + placement.offset,
                    data: bytes,
                    flush,
                },
            )
            .expect("window and range pre-checked");
        let tx_id = record.tx_id;
        self.queue.push_back(AppendedRecord {
            record,
            log_off: placement.offset,
            logical_end: placement.logical + record_len,
        });
        self.next_tx += 1;
        Ok(WalReceipt {
            tx_id,
            gens: vec![gen],
        })
    }

    /// Executes the oldest appended transaction on every replica (gMEMCPY
    /// per entry) and advances the durable head pointer (gWRITE), all
    /// flushed. Returns `None` when there is nothing to execute.
    ///
    /// # Errors
    ///
    /// [`WalError::WindowFull`] if the record's ops do not fit in the
    /// remaining window (nothing is issued; retry after polling).
    pub fn execute_and_advance<T: GroupTransport>(
        &mut self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
    ) -> Result<Option<WalReceipt>, WalError> {
        let Some(rec) = self.queue.front() else {
            return Ok(None);
        };
        // All ops must fit the window together so the head-advance write
        // cannot be separated from its copies indefinitely.
        let needed = rec.record.entries.len() as u64 + 1;
        if client.in_flight() + needed > client.window() as u64 {
            return Err(WalError::WindowFull);
        }

        let rec = self.queue.pop_front().expect("checked above");
        let mut gens = Vec::with_capacity(needed as usize);
        let data_offsets = rec.record.entry_data_offsets();
        for (entry, doff) in rec.record.entries.iter().zip(data_offsets) {
            let src = self.layout.log_offset + rec.log_off + doff;
            let dst = self.layout.db_offset + entry.offset;
            let gen = client
                .issue(
                    ctx,
                    GroupOp::Memcpy {
                        src,
                        dst,
                        len: entry.data.len() as u64,
                        flush: true,
                    },
                )
                .expect("window pre-checked");
            gens.push(gen);
        }
        // Advance the durable head pointer (ring head + next tx) past this
        // record.
        self.ring.advance_head_to(rec.logical_end);
        let mut head_bytes = [0u8; 16];
        head_bytes[..8].copy_from_slice(&self.ring.head().to_le_bytes());
        head_bytes[8..].copy_from_slice(&(rec.record.tx_id + 1).to_le_bytes());
        let gen = client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: self.layout.head_ptr_offset,
                    data: Payload::copy_from(&head_bytes),
                    flush: true,
                },
            )
            .expect("window pre-checked");
        gens.push(gen);
        Ok(Some(WalReceipt {
            tx_id: rec.record.tx_id,
            gens,
        }))
    }
}

/// Recovers the logically unapplied suffix of a WAL from raw durable bytes:
/// `head_ptr_bytes` are the 16 durable bytes at the head pointer, `log` is
/// the durable log region. Returns records in application order, rejecting
/// stale records left over from earlier ring laps (their tx ids break the
/// consecutive run starting at the stored next-tx).
pub fn recover_unapplied(head_ptr_bytes: &[u8], log: &[u8]) -> Vec<LogRecord> {
    assert!(head_ptr_bytes.len() >= 16, "need 16 head-pointer bytes");
    let head = u64::from_le_bytes(head_ptr_bytes[..8].try_into().expect("8 bytes"));
    let next_tx = u64::from_le_bytes(head_ptr_bytes[8..16].try_into().expect("8 bytes"));
    let head_phys = (head % log.len() as u64) as usize;
    let mut candidates = walog::scan(&log[head_phys..]);
    candidates.extend(walog::scan(&log[..head_phys]));
    let mut expected = next_tx;
    let mut kept = Vec::new();
    for rec in candidates {
        if rec.tx_id == expected {
            expected += 1;
            kept.push(rec);
        } else {
            break;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::HyperLoopGroup;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;
    use walog::scan;

    fn setup() -> (Simulation<FabricSim>, HyperLoopGroup, ReplicatedWal) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            5,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let cfg = GroupConfig::default();
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, cfg)
        });
        sim.run();
        let layout = WalLayout::standard(cfg.shared_size, 1 << 20, 4096);
        (sim, group, ReplicatedWal::new(layout))
    }

    fn settle(sim: &mut Simulation<FabricSim>, group: &mut HyperLoopGroup) -> usize {
        sim.run();
        let acks = drive(sim, |ctx| group.client.poll(ctx));
        assert_eq!(sim.model.fab.stats().errors, 0);
        acks.len()
    }

    #[test]
    fn append_then_execute_applies_to_every_replica_db() {
        let (mut sim, mut group, mut wal) = setup();
        let shared = group.client.layout().shared_base;
        let receipt = drive(&mut sim, |ctx| {
            wal.append(
                &mut group.client,
                ctx,
                vec![
                    LogEntry {
                        offset: 100,
                        data: b"value-A".to_vec(),
                    },
                    LogEntry {
                        offset: 9000,
                        data: b"value-B".to_vec(),
                    },
                ],
            )
            .unwrap()
        });
        assert_eq!(receipt.tx_id, 0);
        settle(&mut sim, &mut group);

        let exec = drive(&mut sim, |ctx| {
            wal.execute_and_advance(&mut group.client, ctx)
                .unwrap()
                .expect("one record queued")
        });
        assert_eq!(exec.gens.len(), 3, "two memcpys + one head write");
        settle(&mut sim, &mut group);

        let db = wal.layout().db_offset;
        for n in [NodeId(1), NodeId(2), NodeId(3)] {
            assert_eq!(
                sim.model.fab.mem(n).read_vec(shared + db + 100, 7).unwrap(),
                b"value-A"
            );
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(shared + db + 9000, 7)
                    .unwrap(),
                b"value-B"
            );
            assert!(sim
                .model
                .fab
                .mem(n)
                .is_durable(shared + db + 100, 7)
                .unwrap());
            // Head pointer advanced and durable.
            let head_bytes = sim
                .model
                .fab
                .mem(n)
                .read_vec(shared + wal.layout().head_ptr_offset, 8)
                .unwrap();
            assert!(u64::from_le_bytes(head_bytes.try_into().unwrap()) > 0);
        }
    }

    #[test]
    fn log_contents_survive_power_failure_for_recovery_scan() {
        let (mut sim, mut group, mut wal) = setup();
        let shared = group.client.layout().shared_base;
        for i in 0..3u64 {
            drive(&mut sim, |ctx| {
                wal.append(
                    &mut group.client,
                    ctx,
                    vec![LogEntry {
                        offset: i * 64,
                        data: vec![i as u8 + 1; 32],
                    }],
                )
                .unwrap()
            });
            settle(&mut sim, &mut group);
        }
        // Crash a replica; the appended (flushed) records must be scannable.
        sim.model.fab.mem(NodeId(2)).power_failure();
        let log_bytes = sim
            .model
            .fab
            .mem(NodeId(2))
            .read_vec(shared + wal.layout().log_offset, 64 * 1024)
            .unwrap();
        let recovered = scan(&log_bytes);
        assert_eq!(recovered.len(), 3);
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.tx_id, i as u64);
            assert_eq!(r.entries[0].data, vec![i as u8 + 1; 32]);
        }
    }

    #[test]
    fn execute_on_empty_backlog_is_none() {
        let (mut sim, mut group, mut wal) = setup();
        let r = drive(&mut sim, |ctx| {
            wal.execute_and_advance(&mut group.client, ctx).unwrap()
        });
        assert!(r.is_none());
    }

    #[test]
    fn oversized_entry_rejected() {
        let (mut sim, mut group, mut wal) = setup();
        let db_size = wal.layout().db_size;
        let err = drive(&mut sim, |ctx| {
            wal.append(
                &mut group.client,
                ctx,
                vec![LogEntry {
                    offset: db_size - 4,
                    data: vec![0; 8],
                }],
            )
            .unwrap_err()
        });
        assert_eq!(err, WalError::EntryOutOfDatabase);
    }

    #[test]
    fn many_transactions_wrap_the_ring() {
        let (mut sim, mut group, mut wal) = setup();
        // Each record ~ 24 + 12 + 2048 bytes; 1 MiB ring wraps after ~500.
        for i in 0..600u64 {
            drive(&mut sim, |ctx| {
                wal.append(
                    &mut group.client,
                    ctx,
                    vec![LogEntry {
                        offset: (i % 64) * 2048,
                        data: vec![i as u8; 2048],
                    }],
                )
                .unwrap()
            });
            settle(&mut sim, &mut group);
            drive(&mut sim, |ctx| {
                wal.execute_and_advance(&mut group.client, ctx)
                    .unwrap()
                    .expect("record queued")
            });
            settle(&mut sim, &mut group);
            // Maintain replica descriptor rings (off the critical path).
            drive(&mut sim, |ctx| {
                for r in &mut group.replicas {
                    r.replenish(ctx, 3);
                }
            });
        }
        let shared = group.client.layout().shared_base;
        let db = wal.layout().db_offset;
        // Last value applied correctly despite hundreds of wraps.
        let expect = vec![599u64 as u8; 2048];
        let val = sim
            .model
            .fab
            .mem(NodeId(3))
            .read_vec(shared + db + (599 % 64) * 2048, 2048)
            .unwrap();
        assert_eq!(val, expect);
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn log_full_reported_when_not_executing() {
        let (mut sim, mut group, _) = setup();
        // Tiny ring to hit LogFull quickly.
        let layout = WalLayout {
            log_offset: 4096,
            log_size: 512,
            db_offset: 1 << 20,
            db_size: 1 << 20,
            head_ptr_offset: 0,
        };
        let mut wal = ReplicatedWal::new(layout);
        let mut filled = false;
        for _ in 0..10 {
            let r = drive(&mut sim, |ctx| {
                wal.append(
                    &mut group.client,
                    ctx,
                    vec![LogEntry {
                        offset: 0,
                        data: vec![1; 100],
                    }],
                )
            });
            settle(&mut sim, &mut group);
            if r == Err(WalError::LogFull) {
                filled = true;
                break;
            }
        }
        assert!(filled, "ring never filled");
    }
}
