//! Multi-group sharding: many replication chains behind one key router.
//!
//! A single HyperLoop group serializes every operation through one chain of
//! NICs, so its throughput tops out at one chain's WQE rate regardless of
//! how many machines the cluster has. The paper scales past that the same
//! way production stores do: *shard* the key space over many independent
//! groups, each with its own chain, window and completion queue, and route
//! each operation to the group that owns its key.
//!
//! [`ShardSet`] owns one [`GroupTransport`] per shard plus a pluggable
//! [`ShardRouter`]. It is generic over the transport, so a sharded
//! HyperLoop deployment and a sharded Naïve-RDMA baseline are the same code
//! — the apples-to-apples property the single-group layer already has,
//! lifted one level up. A 1-shard `ShardSet` degenerates to exactly its
//! inner transport: same ops, same generations, same latencies.

use crate::group::GroupError;
use crate::ops::{GroupAck, GroupOp};
use crate::transport::GroupTransport;
use rnicsim::NicCtx;
use simcore::{MetricsRegistry, SimDuration};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Identifies one shard (one replication group) within a [`ShardSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Maps a key to the shard that owns it.
///
/// Routers must be *stable* (same key, same shard count → same shard,
/// always) and must cover the whole range `0..n_shards`.
pub trait ShardRouter: fmt::Debug {
    /// Routes `key` to a shard in `0..n_shards`.
    fn route(&self, key: u64, n_shards: u32) -> ShardId;
}

/// Stable hash routing (SplitMix64 finalizer): spreads arbitrary keys
/// uniformly over the shards. The default router.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn route(&self, key: u64, n_shards: u32) -> ShardId {
        assert!(n_shards > 0, "no shards to route to");
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ShardId((z % n_shards as u64) as u32)
    }
}

/// Contiguous range routing: key space `[0, capacity)` is split into
/// `n_shards` equal spans, so adjacent keys land on the same shard (good
/// for scans; vulnerable to skew). Keys at or beyond `capacity` clamp to
/// the last shard.
#[derive(Debug, Clone, Copy)]
pub struct RangeRouter {
    /// Exclusive upper bound of the expected key space.
    pub capacity: u64,
}

impl RangeRouter {
    /// A range router over keys `[0, capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "range router needs a non-empty key space");
        RangeRouter { capacity }
    }
}

impl ShardRouter for RangeRouter {
    fn route(&self, key: u64, n_shards: u32) -> ShardId {
        assert!(n_shards > 0, "no shards to route to");
        let span = self.capacity.div_ceil(n_shards as u64).max(1);
        ShardId(((key / span).min(n_shards as u64 - 1)) as u32)
    }
}

/// An acknowledged operation, tagged with the shard it completed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAck {
    /// The shard whose chain acknowledged.
    pub shard: ShardId,
    /// The per-shard group ack (generation + result map).
    pub ack: GroupAck,
}

/// Joins the completions of one multi-shard batch (e.g. the per-shard legs
/// of a distributed transaction phase) into a single done signal.
///
/// Track every issued `(shard, gen)` pair — [`ShardSet::issue_many`] does
/// this for you — then feed each polled [`ShardAck`] to [`AckJoin::absorb`];
/// the join is done once every tracked pair has been observed. Foreign acks
/// are ignored, so one poll loop can drive many joins.
#[derive(Debug, Clone, Default)]
pub struct AckJoin {
    pending: HashSet<(u32, u64)>,
}

impl AckJoin {
    /// An empty join (done until something is tracked).
    pub fn new() -> Self {
        AckJoin::default()
    }

    /// Adds an issued `(shard, gen)` pair to the join.
    pub fn track(&mut self, shard: ShardId, gen: u64) {
        self.pending.insert((shard.0, gen));
    }

    /// Absorbs one polled ack; returns true if it belonged to this join.
    pub fn absorb(&mut self, ack: &ShardAck) -> bool {
        self.absorb_key(ack.shard, ack.ack.gen)
    }

    /// Removes one tracked `(shard, key)` pair directly. The key need not
    /// be a transport generation — app layers join over their own
    /// completion identifiers (e.g. per-shard transaction sequence
    /// numbers) with the same structure.
    pub fn absorb_key(&mut self, shard: ShardId, key: u64) -> bool {
        self.pending.remove(&(shard.0, key))
    }

    /// True once every tracked pair has acknowledged.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pairs still awaited.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Per-shard record of the last completed migration, kept for metrics
/// export (`{prefix}.shard{i}.migration.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// The epoch the shard serves after the migration.
    pub epoch: u64,
    /// Length of the pause window (writes neither issued nor acked).
    pub pause: SimDuration,
    /// Total bytes copied to the new chain (bulk copy + replayed tail).
    pub copy_bytes: u64,
    /// Dirty ranges replayed after the bulk copy (the WAL tail that raced
    /// the snapshot).
    pub replayed: u64,
}

/// Default bound of the per-shard holding pen (ops buffered while the
/// shard is paused for migration).
pub const DEFAULT_PEN_CAPACITY: usize = 64;

/// Many replication groups behind one router.
///
/// Issue against a key with [`ShardSet::issue_key`] (router decides the
/// shard) or against an explicit shard with [`ShardSet::issue_on`]; collect
/// completions from *all* shards' completion queues with
/// [`ShardSet::poll`]. Generations are per-shard *and per-epoch* —
/// `(shard, epoch, gen)` is the unique operation identity; a shard's epoch
/// bumps each time its transport is swapped by a migration
/// ([`ShardSet::replace_shard`]), and generations restart on the new
/// transport.
///
/// A shard can be [`ShardSet::pause`]d (migration's pause window): it
/// accepts no new issues, but ops may be parked in a bounded holding pen
/// with [`ShardSet::defer_on`] and are issued in arrival order when the
/// shard [`ShardSet::resume`]s. Other shards are unaffected.
#[derive(Debug)]
pub struct ShardSet<T: GroupTransport> {
    shards: Vec<T>,
    router: Box<dyn ShardRouter + Send>,
    issued: Vec<u64>,
    acked: Vec<u64>,
    epochs: Vec<u64>,
    paused: Vec<bool>,
    pens: Vec<VecDeque<GroupOp>>,
    pen_capacity: usize,
    migrations: Vec<Option<MigrationStats>>,
    /// Reusable fan-in buffer for [`ShardSet::poll_shard_into`].
    ack_scratch: Vec<GroupAck>,
}

impl<T: GroupTransport> ShardSet<T> {
    /// Builds a shard set over `shards` transports (chain order = shard id
    /// order) with the given router.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<T>, router: Box<dyn ShardRouter + Send>) -> Self {
        assert!(!shards.is_empty(), "shard set needs at least one shard");
        let n = shards.len();
        ShardSet {
            shards,
            router,
            issued: vec![0; n],
            acked: vec![0; n],
            epochs: vec![0; n],
            paused: vec![false; n],
            pens: (0..n).map(|_| VecDeque::new()).collect(),
            pen_capacity: DEFAULT_PEN_CAPACITY,
            migrations: vec![None; n],
            ack_scratch: Vec::new(),
        }
    }

    /// Builds a shard set with the default [`HashRouter`].
    pub fn with_hash_router(shards: Vec<T>) -> Self {
        ShardSet::new(shards, Box::new(HashRouter))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard that owns `key`.
    pub fn route(&self, key: u64) -> ShardId {
        let s = self.router.route(key, self.shard_count());
        assert!(
            (s.0 as usize) < self.shards.len(),
            "router returned {s} for {} shards",
            self.shards.len()
        );
        s
    }

    /// One shard's transport.
    pub fn shard(&self, id: ShardId) -> &T {
        &self.shards[id.0 as usize]
    }

    /// One shard's transport, mutably (e.g. to install a tracer).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut T {
        &mut self.shards[id.0 as usize]
    }

    /// Iterates `(id, transport)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &T)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, t)| (ShardId(i as u32), t))
    }

    /// Operations issued but not yet acknowledged, across all shards.
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|s| s.in_flight()).sum()
    }

    /// Operations acknowledged, across all shards.
    pub fn completed(&self) -> u64 {
        self.acked.iter().sum()
    }

    /// Operations issued, across all shards.
    pub fn issued(&self) -> u64 {
        self.issued.iter().sum()
    }

    /// Operations acknowledged on one shard.
    pub fn completed_on(&self, id: ShardId) -> u64 {
        self.acked[id.0 as usize]
    }

    /// True if `key`'s shard can take another op right now (not paused,
    /// window open).
    pub fn can_issue_key(&self, key: u64) -> bool {
        self.can_issue_on(self.route(key))
    }

    /// True if the explicit shard can take another op right now (not
    /// paused, window open).
    pub fn can_issue_on(&self, id: ShardId) -> bool {
        !self.paused[id.0 as usize] && self.shards[id.0 as usize].can_issue()
    }

    /// Issues `op` on the shard that owns `key`, returning the shard and
    /// the per-shard generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] if that shard's window is full (other
    /// shards may still have room — the caller decides whether to retry,
    /// pick another key, or poll); [`GroupError::OutOfRange`] for offsets
    /// beyond the shard's shared region.
    pub fn issue_key(
        &mut self,
        ctx: &mut NicCtx<'_>,
        key: u64,
        op: GroupOp,
    ) -> Result<(ShardId, u64), GroupError> {
        let shard = self.route(key);
        self.issue_on(ctx, shard, op).map(|gen| (shard, gen))
    }

    /// Issues `op` on an explicit shard, returning the per-shard
    /// generation.
    ///
    /// # Errors
    ///
    /// As [`ShardSet::issue_key`]; a paused shard reports
    /// [`GroupError::WindowFull`] (park the op with [`ShardSet::defer_on`]
    /// instead).
    pub fn issue_on(
        &mut self,
        ctx: &mut NicCtx<'_>,
        id: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError> {
        if self.paused[id.0 as usize] {
            return Err(GroupError::WindowFull);
        }
        let gen = self.shards[id.0 as usize].issue(ctx, op)?;
        self.issued[id.0 as usize] += 1;
        Ok(gen)
    }

    /// Issues a batch of ops spanning several shards as one joined unit,
    /// returning an [`AckJoin`] that completes when every leg has acked.
    ///
    /// Admission is all-or-nothing: every target shard must be unpaused
    /// and have window room for *all* of its legs before anything is
    /// issued, so a mid-batch `WindowFull` can never leave a transaction
    /// phase half-submitted.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] (nothing issued) if any target shard is
    /// paused or short on window room; issue-time errors from a validated
    /// batch propagate from the underlying transport.
    pub fn issue_many(
        &mut self,
        ctx: &mut NicCtx<'_>,
        ops: impl IntoIterator<Item = (ShardId, GroupOp)>,
    ) -> Result<AckJoin, GroupError> {
        let ops: Vec<(ShardId, GroupOp)> = ops.into_iter().collect();
        let mut demand: HashMap<u32, u64> = HashMap::new();
        for (id, _) in &ops {
            *demand.entry(id.0).or_insert(0) += 1;
        }
        for (&s, &need) in &demand {
            let i = s as usize;
            let t = &self.shards[i];
            let room = (t.window() as u64).saturating_sub(t.in_flight());
            if self.paused[i] || room < need {
                return Err(GroupError::WindowFull);
            }
        }
        let mut join = AckJoin::new();
        for (id, op) in ops {
            let gen = self.issue_on(ctx, id, op)?;
            join.track(id, gen);
        }
        Ok(join)
    }

    /// Collects completed operations from every shard's completion queue
    /// (aggregate fan-in), in shard order.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<ShardAck> {
        let mut acks = Vec::new();
        self.poll_into(ctx, &mut acks);
        acks
    }

    /// Collects completed operations from every shard into a
    /// caller-provided buffer, returning how many were appended. The
    /// fan-in runs every driver tick over every shard, so it reuses one
    /// internal scratch vector per shard transport and appends into the
    /// caller's — no per-tick allocation at steady state.
    pub fn poll_into(&mut self, ctx: &mut NicCtx<'_>, acks: &mut Vec<ShardAck>) -> usize {
        let mut appended = 0;
        for i in 0..self.shards.len() {
            appended += self.poll_shard_into(ctx, ShardId(i as u32), acks);
        }
        appended
    }

    /// Collects completed operations from one shard's completion queue,
    /// with the same accounting as [`ShardSet::poll`]. Migration drivers
    /// use this to drain the migrating shard without touching (or stealing
    /// acks from) the shards that keep serving.
    pub fn poll_shard(&mut self, ctx: &mut NicCtx<'_>, id: ShardId) -> Vec<ShardAck> {
        let mut acks = Vec::new();
        self.poll_shard_into(ctx, id, &mut acks);
        acks
    }

    /// [`ShardSet::poll_shard`] into a caller-provided buffer, returning
    /// how many acks were appended.
    pub fn poll_shard_into(
        &mut self,
        ctx: &mut NicCtx<'_>,
        id: ShardId,
        acks: &mut Vec<ShardAck>,
    ) -> usize {
        let i = id.0 as usize;
        let mut scratch = std::mem::take(&mut self.ack_scratch);
        scratch.clear();
        let appended = self.shards[i].poll_into(ctx, &mut scratch);
        self.acked[i] += appended as u64;
        acks.extend(scratch.drain(..).map(|ack| ShardAck { shard: id, ack }));
        self.ack_scratch = scratch;
        appended
    }

    // ---- migration support -------------------------------------------

    /// The epoch shard `id` currently serves (0 until its first
    /// migration).
    pub fn epoch(&self, id: ShardId) -> u64 {
        self.epochs[id.0 as usize]
    }

    /// True while shard `id` is paused for migration.
    pub fn is_paused(&self, id: ShardId) -> bool {
        self.paused[id.0 as usize]
    }

    /// Ops parked in shard `id`'s holding pen.
    pub fn pen_len(&self, id: ShardId) -> usize {
        self.pens[id.0 as usize].len()
    }

    /// The bound every shard's holding pen enforces
    /// ([`DEFAULT_PEN_CAPACITY`] unless re-bounded).
    pub fn pen_capacity(&self) -> usize {
        self.pen_capacity
    }

    /// Re-bounds every shard's holding pen.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_pen_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "holding pen needs room for at least one op");
        self.pen_capacity = capacity;
    }

    /// Opens the migration pause window on shard `id`: the shard stops
    /// admitting new issues (other shards keep serving). In-flight ops
    /// keep completing and must be drained before cutover.
    ///
    /// # Panics
    ///
    /// Panics if the shard is already paused.
    pub fn pause(&mut self, id: ShardId) {
        let i = id.0 as usize;
        assert!(!self.paused[i], "{id} is already paused");
        self.paused[i] = true;
    }

    /// Parks `op` in the paused shard's bounded holding pen; penned ops
    /// issue in arrival order once the shard resumes.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] if the pen is at capacity (backpressure:
    /// the caller retries after the migration, exactly as for a full
    /// window).
    ///
    /// # Panics
    ///
    /// Panics if the shard is not paused — an unpaused shard takes ops
    /// directly via [`ShardSet::issue_on`].
    pub fn defer_on(&mut self, id: ShardId, op: GroupOp) -> Result<(), GroupError> {
        let i = id.0 as usize;
        assert!(self.paused[i], "deferring onto unpaused {id}");
        if self.pens[i].len() >= self.pen_capacity {
            return Err(GroupError::WindowFull);
        }
        self.pens[i].push_back(op);
        Ok(())
    }

    /// Atomically swaps shard `id`'s transport for `new` (the migration
    /// cutover), bumping the shard's epoch. Returns the old transport so
    /// the caller can retire it.
    ///
    /// # Panics
    ///
    /// Panics unless the shard is paused with zero in-flight ops — acked
    /// writes may never be dropped, and an op in flight on the old chain
    /// at swap time would be exactly that.
    pub fn replace_shard(&mut self, id: ShardId, new: T) -> T {
        let i = id.0 as usize;
        assert!(self.paused[i], "cutover outside the pause window on {id}");
        assert_eq!(
            self.shards[i].in_flight(),
            0,
            "cutover with ops still in flight on {id}"
        );
        self.epochs[i] += 1;
        std::mem::replace(&mut self.shards[i], new)
    }

    /// Closes the pause window on shard `id` and drains as much of its
    /// holding pen as the window allows (continue with
    /// [`ShardSet::drain_pen`] after polling if ops remain). Returns the
    /// generations issued for drained ops, in pen order.
    ///
    /// # Panics
    ///
    /// Panics if the shard is not paused, or if a penned op is rejected
    /// for a reason other than a full window (its offset was validated
    /// against the old chain's layout — a mismatched new chain is a
    /// planning bug).
    pub fn resume(&mut self, ctx: &mut NicCtx<'_>, id: ShardId) -> Vec<u64> {
        let i = id.0 as usize;
        assert!(self.paused[i], "{id} is not paused");
        self.paused[i] = false;
        self.drain_pen(ctx, id)
    }

    /// Issues parked ops from shard `id`'s pen while its window has room.
    /// Returns the generations issued, in pen order.
    pub fn drain_pen(&mut self, ctx: &mut NicCtx<'_>, id: ShardId) -> Vec<u64> {
        let i = id.0 as usize;
        let mut gens = Vec::new();
        while !self.pens[i].is_empty() && self.can_issue_on(id) {
            let op = self.pens[i].pop_front().expect("checked non-empty");
            let gen = self
                .issue_on(ctx, id, op)
                .expect("window checked before issuing penned op");
            gens.push(gen);
        }
        gens
    }

    /// Records the stats of shard `id`'s last migration for metrics
    /// export.
    pub fn record_migration(&mut self, id: ShardId, stats: MigrationStats) {
        self.migrations[id.0 as usize] = Some(stats);
    }

    /// Stats of shard `id`'s last migration, if any.
    pub fn migration(&self, id: ShardId) -> Option<MigrationStats> {
        self.migrations[id.0 as usize]
    }

    /// Snapshots per-shard client counters into `reg`:
    /// `{prefix}.shard{i}.{issued,acked,epoch}` counters,
    /// `{prefix}.shard{i}.{in_flight,window,pen}` and `{prefix}.shards`
    /// gauges, plus `{prefix}.shard{i}.migration.*` for shards that have
    /// migrated. Exporting twice is idempotent: cumulative totals are
    /// `counter_set`, point-in-time values are gauges.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_gauge(&format!("{prefix}.shards"), self.shards.len() as f64);
        for (i, shard) in self.shards.iter().enumerate() {
            reg.counter_set(&format!("{prefix}.shard{i}.issued"), self.issued[i]);
            reg.counter_set(&format!("{prefix}.shard{i}.acked"), self.acked[i]);
            reg.counter_set(&format!("{prefix}.shard{i}.epoch"), self.epochs[i]);
            reg.set_gauge(
                &format!("{prefix}.shard{i}.in_flight"),
                shard.in_flight() as f64,
            );
            reg.set_gauge(&format!("{prefix}.shard{i}.window"), shard.window() as f64);
            reg.set_gauge(&format!("{prefix}.shard{i}.pen"), self.pens[i].len() as f64);
            if let Some(m) = self.migrations[i] {
                let mp = format!("{prefix}.shard{i}.migration");
                reg.counter_set(&format!("{mp}.pause_ns"), m.pause.as_nanos());
                reg.counter_set(&format!("{mp}.copy_bytes"), m.copy_bytes);
                reg.counter_set(&format!("{mp}.replayed"), m.replayed);
                reg.counter_set(&format!("{mp}.epoch"), m.epoch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage(router: &dyn ShardRouter, n: u32, keys: impl Iterator<Item = u64>) -> Vec<u64> {
        let mut hits = vec![0u64; n as usize];
        for k in keys {
            let s = router.route(k, n);
            assert!(s.0 < n, "router escaped range: {s} of {n}");
            hits[s.0 as usize] += 1;
        }
        hits
    }

    #[test]
    fn hash_router_is_stable() {
        for n in [1u32, 2, 3, 8, 64] {
            for key in (0..10_000u64).step_by(37) {
                assert_eq!(HashRouter.route(key, n), HashRouter.route(key, n));
            }
        }
    }

    #[test]
    fn hash_router_covers_every_shard() {
        for n in [1u32, 2, 5, 8] {
            let hits = coverage(&HashRouter, n, 0..4096);
            assert!(
                hits.iter().all(|&h| h > 0),
                "{n} shards, empty shard: {hits:?}"
            );
        }
    }

    #[test]
    fn hash_router_spreads_sequential_keys_roughly_evenly() {
        let n = 8u32;
        let total = 64_000u64;
        let hits = coverage(&HashRouter, n, 0..total);
        let expect = total / n as u64;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > expect / 2 && h < expect * 2,
                "shard {i} badly skewed: {h} vs ~{expect}"
            );
        }
    }

    #[test]
    fn range_router_is_contiguous_and_covers_every_shard() {
        let r = RangeRouter::new(1000);
        for n in [1u32, 2, 4, 7] {
            let hits = coverage(&r, n, 0..1000);
            assert!(hits.iter().all(|&h| h > 0), "{n} shards: {hits:?}");
            // Contiguity: shard ids are monotone in the key.
            let mut last = 0;
            for k in 0..1000u64 {
                let s = r.route(k, n).0;
                assert!(s >= last, "range router not monotone at key {k}");
                last = s;
            }
        }
    }

    #[test]
    fn range_router_clamps_out_of_range_keys() {
        let r = RangeRouter::new(100);
        assert_eq!(r.route(1_000_000, 4), ShardId(3));
    }

    #[test]
    fn range_router_stable() {
        let r = RangeRouter::new(4096);
        for key in 0..4096u64 {
            assert_eq!(r.route(key, 6), r.route(key, 6));
        }
    }
}
