//! Multi-group sharding: many replication chains behind one key router.
//!
//! A single HyperLoop group serializes every operation through one chain of
//! NICs, so its throughput tops out at one chain's WQE rate regardless of
//! how many machines the cluster has. The paper scales past that the same
//! way production stores do: *shard* the key space over many independent
//! groups, each with its own chain, window and completion queue, and route
//! each operation to the group that owns its key.
//!
//! [`ShardSet`] owns one [`GroupTransport`] per shard plus a pluggable
//! [`ShardRouter`]. It is generic over the transport, so a sharded
//! HyperLoop deployment and a sharded Naïve-RDMA baseline are the same code
//! — the apples-to-apples property the single-group layer already has,
//! lifted one level up. A 1-shard `ShardSet` degenerates to exactly its
//! inner transport: same ops, same generations, same latencies.

use crate::group::GroupError;
use crate::ops::{GroupAck, GroupOp};
use crate::transport::GroupTransport;
use rnicsim::NicCtx;
use simcore::MetricsRegistry;
use std::fmt;

/// Identifies one shard (one replication group) within a [`ShardSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Maps a key to the shard that owns it.
///
/// Routers must be *stable* (same key, same shard count → same shard,
/// always) and must cover the whole range `0..n_shards`.
pub trait ShardRouter: fmt::Debug {
    /// Routes `key` to a shard in `0..n_shards`.
    fn route(&self, key: u64, n_shards: u32) -> ShardId;
}

/// Stable hash routing (SplitMix64 finalizer): spreads arbitrary keys
/// uniformly over the shards. The default router.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn route(&self, key: u64, n_shards: u32) -> ShardId {
        assert!(n_shards > 0, "no shards to route to");
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ShardId((z % n_shards as u64) as u32)
    }
}

/// Contiguous range routing: key space `[0, capacity)` is split into
/// `n_shards` equal spans, so adjacent keys land on the same shard (good
/// for scans; vulnerable to skew). Keys at or beyond `capacity` clamp to
/// the last shard.
#[derive(Debug, Clone, Copy)]
pub struct RangeRouter {
    /// Exclusive upper bound of the expected key space.
    pub capacity: u64,
}

impl RangeRouter {
    /// A range router over keys `[0, capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "range router needs a non-empty key space");
        RangeRouter { capacity }
    }
}

impl ShardRouter for RangeRouter {
    fn route(&self, key: u64, n_shards: u32) -> ShardId {
        assert!(n_shards > 0, "no shards to route to");
        let span = self.capacity.div_ceil(n_shards as u64).max(1);
        ShardId(((key / span).min(n_shards as u64 - 1)) as u32)
    }
}

/// An acknowledged operation, tagged with the shard it completed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAck {
    /// The shard whose chain acknowledged.
    pub shard: ShardId,
    /// The per-shard group ack (generation + result map).
    pub ack: GroupAck,
}

/// Many replication groups behind one router.
///
/// Issue against a key with [`ShardSet::issue_key`] (router decides the
/// shard) or against an explicit shard with [`ShardSet::issue_on`]; collect
/// completions from *all* shards' completion queues with
/// [`ShardSet::poll`]. Generations are per-shard — `(shard, gen)` is the
/// unique operation identity.
#[derive(Debug)]
pub struct ShardSet<T: GroupTransport> {
    shards: Vec<T>,
    router: Box<dyn ShardRouter + Send>,
    issued: Vec<u64>,
    acked: Vec<u64>,
}

impl<T: GroupTransport> ShardSet<T> {
    /// Builds a shard set over `shards` transports (chain order = shard id
    /// order) with the given router.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<T>, router: Box<dyn ShardRouter + Send>) -> Self {
        assert!(!shards.is_empty(), "shard set needs at least one shard");
        let n = shards.len();
        ShardSet {
            shards,
            router,
            issued: vec![0; n],
            acked: vec![0; n],
        }
    }

    /// Builds a shard set with the default [`HashRouter`].
    pub fn with_hash_router(shards: Vec<T>) -> Self {
        ShardSet::new(shards, Box::new(HashRouter))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard that owns `key`.
    pub fn route(&self, key: u64) -> ShardId {
        let s = self.router.route(key, self.shard_count());
        assert!(
            (s.0 as usize) < self.shards.len(),
            "router returned {s} for {} shards",
            self.shards.len()
        );
        s
    }

    /// One shard's transport.
    pub fn shard(&self, id: ShardId) -> &T {
        &self.shards[id.0 as usize]
    }

    /// One shard's transport, mutably (e.g. to install a tracer).
    pub fn shard_mut(&mut self, id: ShardId) -> &mut T {
        &mut self.shards[id.0 as usize]
    }

    /// Iterates `(id, transport)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, &T)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, t)| (ShardId(i as u32), t))
    }

    /// Operations issued but not yet acknowledged, across all shards.
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|s| s.in_flight()).sum()
    }

    /// Operations acknowledged, across all shards.
    pub fn completed(&self) -> u64 {
        self.acked.iter().sum()
    }

    /// Operations issued, across all shards.
    pub fn issued(&self) -> u64 {
        self.issued.iter().sum()
    }

    /// Operations acknowledged on one shard.
    pub fn completed_on(&self, id: ShardId) -> u64 {
        self.acked[id.0 as usize]
    }

    /// True if `key`'s shard can take another op right now.
    pub fn can_issue_key(&self, key: u64) -> bool {
        self.shards[self.route(key).0 as usize].can_issue()
    }

    /// True if the explicit shard can take another op right now.
    pub fn can_issue_on(&self, id: ShardId) -> bool {
        self.shards[id.0 as usize].can_issue()
    }

    /// Issues `op` on the shard that owns `key`, returning the shard and
    /// the per-shard generation.
    ///
    /// # Errors
    ///
    /// [`GroupError::WindowFull`] if that shard's window is full (other
    /// shards may still have room — the caller decides whether to retry,
    /// pick another key, or poll); [`GroupError::OutOfRange`] for offsets
    /// beyond the shard's shared region.
    pub fn issue_key(
        &mut self,
        ctx: &mut NicCtx<'_>,
        key: u64,
        op: GroupOp,
    ) -> Result<(ShardId, u64), GroupError> {
        let shard = self.route(key);
        self.issue_on(ctx, shard, op).map(|gen| (shard, gen))
    }

    /// Issues `op` on an explicit shard, returning the per-shard
    /// generation.
    ///
    /// # Errors
    ///
    /// As [`ShardSet::issue_key`].
    pub fn issue_on(
        &mut self,
        ctx: &mut NicCtx<'_>,
        id: ShardId,
        op: GroupOp,
    ) -> Result<u64, GroupError> {
        let gen = self.shards[id.0 as usize].issue(ctx, op)?;
        self.issued[id.0 as usize] += 1;
        Ok(gen)
    }

    /// Collects completed operations from every shard's completion queue
    /// (aggregate fan-in), in shard order.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<ShardAck> {
        let mut acks = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let got = shard.poll(ctx);
            self.acked[i] += got.len() as u64;
            acks.extend(got.into_iter().map(|ack| ShardAck {
                shard: ShardId(i as u32),
                ack,
            }));
        }
        acks
    }

    /// Snapshots per-shard client counters into `reg`:
    /// `{prefix}.shard{i}.{issued,acked,in_flight,window}` plus
    /// `{prefix}.shards`.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter_add(&format!("{prefix}.shards"), self.shards.len() as u64);
        for (i, shard) in self.shards.iter().enumerate() {
            reg.counter_add(&format!("{prefix}.shard{i}.issued"), self.issued[i]);
            reg.counter_add(&format!("{prefix}.shard{i}.acked"), self.acked[i]);
            reg.counter_add(&format!("{prefix}.shard{i}.in_flight"), shard.in_flight());
            reg.counter_add(&format!("{prefix}.shard{i}.window"), shard.window() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage(router: &dyn ShardRouter, n: u32, keys: impl Iterator<Item = u64>) -> Vec<u64> {
        let mut hits = vec![0u64; n as usize];
        for k in keys {
            let s = router.route(k, n);
            assert!(s.0 < n, "router escaped range: {s} of {n}");
            hits[s.0 as usize] += 1;
        }
        hits
    }

    #[test]
    fn hash_router_is_stable() {
        for n in [1u32, 2, 3, 8, 64] {
            for key in (0..10_000u64).step_by(37) {
                assert_eq!(HashRouter.route(key, n), HashRouter.route(key, n));
            }
        }
    }

    #[test]
    fn hash_router_covers_every_shard() {
        for n in [1u32, 2, 5, 8] {
            let hits = coverage(&HashRouter, n, 0..4096);
            assert!(
                hits.iter().all(|&h| h > 0),
                "{n} shards, empty shard: {hits:?}"
            );
        }
    }

    #[test]
    fn hash_router_spreads_sequential_keys_roughly_evenly() {
        let n = 8u32;
        let total = 64_000u64;
        let hits = coverage(&HashRouter, n, 0..total);
        let expect = total / n as u64;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > expect / 2 && h < expect * 2,
                "shard {i} badly skewed: {h} vs ~{expect}"
            );
        }
    }

    #[test]
    fn range_router_is_contiguous_and_covers_every_shard() {
        let r = RangeRouter::new(1000);
        for n in [1u32, 2, 4, 7] {
            let hits = coverage(&r, n, 0..1000);
            assert!(hits.iter().all(|&h| h > 0), "{n} shards: {hits:?}");
            // Contiguity: shard ids are monotone in the key.
            let mut last = 0;
            for k in 0..1000u64 {
                let s = r.route(k, n).0;
                assert!(s >= last, "range router not monotone at key {k}");
                last = s;
            }
        }
    }

    #[test]
    fn range_router_clamps_out_of_range_keys() {
        let r = RangeRouter::new(100);
        assert_eq!(r.route(1_000_000, 4), ShardId(3));
    }

    #[test]
    fn range_router_stable() {
        let r = RangeRouter::new(4096);
        for key in 0..4096u64 {
            assert_eq!(r.route(key, 6), r.route(key, 6));
        }
    }
}
