//! Consistent replica reads (paper §5, "Locking and Isolation").
//!
//! HyperLoop's write locks keep all replicas identical, so *any* replica can
//! serve a consistent read — that is the read-throughput argument of §5/§7.
//! A locked read is three steps, all initiated by the client, none touching
//! a replica CPU:
//!
//! 1. a per-replica read-lock gCAS (`expected → expected + 1`) on the lock
//!    word, scoped to the one replica being read;
//! 2. a one-sided RDMA READ of the data from that replica;
//! 3. the matching read-unlock gCAS.
//!
//! [`ReplicaReader`] owns one client→replica QP per chain member and drives
//! any number of concurrent reads as an ack-driven state machine.

use crate::group::GroupClient;
use crate::lock::{LockTable, RdLockOutcome};
use crate::ops::GroupAck;
use netsim::NodeId;
use rnicsim::{wqe_flags, CqId, NicCtx, Opcode, QpId, Wqe};
use std::collections::HashMap;

/// Maximum bytes of one locked read.
pub const READ_SLOT: u64 = 8192;

#[derive(Debug)]
enum Phase {
    Locking { expected: u64 },
    Reading,
    Unlocking { count: u64 },
}

#[derive(Debug)]
struct ReadState {
    replica: u32,
    lock_id: u32,
    offset: u64,
    len: u64,
    phase: Phase,
    data: Option<Vec<u8>>,
}

/// A completed locked read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRead {
    /// Token returned by [`ReplicaReader::begin`].
    pub token: u64,
    /// Chain position served from.
    pub replica: u32,
    /// The bytes read under the lock.
    pub data: Vec<u8>,
}

/// Client-side machinery for lock-protected one-sided replica reads.
#[derive(Debug)]
pub struct ReplicaReader {
    client_node: NodeId,
    qps: Vec<QpId>,
    cq: CqId,
    buf_base: u64,
    buf_slots: u32,
    locks: LockTable,
    shared_base: u64,
    pending: HashMap<u64, ReadState>,
    /// gCAS generation → read token.
    gen_to_token: HashMap<u64, u64>,
    next_token: u64,
}

impl ReplicaReader {
    /// Wires one read QP from the client to every replica and a bounce
    /// buffer; `locks` is the same table the writers use.
    pub fn setup(
        fab: &mut rnicsim::RdmaFabric,
        client: &GroupClient,
        replica_nodes: &[NodeId],
        locks: LockTable,
    ) -> ReplicaReader {
        let client_node = client.node();
        let cq = fab.create_cq(client_node);
        let buf_slots = 32u32;
        let buf_base = fab.alloc(client_node, READ_SLOT * buf_slots as u64);
        let mut qps = Vec::with_capacity(replica_nodes.len());
        for &rn in replica_nodes {
            let qp = fab.create_qp(client_node, cq, cq);
            let rcq = fab.create_cq(rn);
            let rqp = fab.create_qp(rn, rcq, rcq);
            fab.connect(client_node, qp, rn, rqp);
            qps.push(qp);
        }
        ReplicaReader {
            client_node,
            qps,
            cq,
            buf_base,
            buf_slots,
            locks,
            shared_base: client.layout().shared_base,
            pending: HashMap::new(),
            gen_to_token: HashMap::new(),
            next_token: 0,
        }
    }

    /// Reads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Starts a locked read of `[offset, offset+len)` from chain position
    /// `replica`, protected by `lock_id`. Completion arrives from
    /// [`ReplicaReader::pump`].
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`READ_SLOT`] or `replica` is out of range.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn begin(
        &mut self,
        client: &mut GroupClient,
        ctx: &mut NicCtx<'_>,
        replica: u32,
        lock_id: u32,
        offset: u64,
        len: u64,
    ) -> u64 {
        assert!(len <= READ_SLOT, "read larger than the bounce slot");
        assert!((replica as usize) < self.qps.len(), "replica out of range");
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            ReadState {
                replica,
                lock_id,
                offset,
                len,
                phase: Phase::Locking { expected: 0 },
                data: None,
            },
        );
        let gen = self
            .locks
            .rd_lock(client, ctx, lock_id, replica, 0)
            .expect("lock issue");
        self.gen_to_token.insert(gen, token);
        token
    }

    fn post_data_read(&mut self, ctx: &mut NicCtx<'_>, token: u64) {
        let st = &self.pending[&token];
        let slot = self.buf_base + (token % self.buf_slots as u64) * READ_SLOT;
        ctx.post_send(
            self.client_node,
            self.qps[st.replica as usize],
            Wqe {
                opcode: Opcode::Read,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: slot,
                len: st.len,
                remote_addr: self.shared_base + st.offset,
                wr_id: token,
                ..Wqe::default()
            },
        );
    }

    /// Drives every pending read with the group acks the caller polled from
    /// its [`GroupClient`] (lock/unlock legs) and this reader's own READ
    /// completions. Returns finished reads.
    pub fn pump(
        &mut self,
        client: &mut GroupClient,
        ctx: &mut NicCtx<'_>,
        group_acks: &[GroupAck],
    ) -> Vec<CompletedRead> {
        let mut done = Vec::new();

        // Lock / unlock acks.
        for ack in group_acks {
            let Some(&token) = self.gen_to_token.get(&ack.gen) else {
                continue;
            };
            self.gen_to_token.remove(&ack.gen);
            let st = self.pending.get_mut(&token).expect("pending read");
            match st.phase {
                Phase::Locking { expected } => {
                    match self.locks.interpret_rd_lock(ack, st.replica, expected) {
                        RdLockOutcome::Acquired => {
                            st.phase = Phase::Reading;
                            self.post_data_read(ctx, token);
                        }
                        RdLockOutcome::Retry { observed } => {
                            st.phase = Phase::Locking { expected: observed };
                            let gen = self
                                .locks
                                .rd_lock(client, ctx, st.lock_id, st.replica, observed)
                                .expect("lock retry issue");
                            self.gen_to_token.insert(gen, token);
                        }
                        RdLockOutcome::WriterHeld { .. } => {
                            // Writer active: retry from scratch (it will
                            // release; the chain guarantees progress).
                            st.phase = Phase::Locking { expected: 0 };
                            let gen = self
                                .locks
                                .rd_lock(client, ctx, st.lock_id, st.replica, 0)
                                .expect("lock retry issue");
                            self.gen_to_token.insert(gen, token);
                        }
                    }
                }
                Phase::Unlocking { count } => {
                    match self.locks.interpret_rd_lock(ack, st.replica, count) {
                        RdLockOutcome::Acquired => {
                            let st = self.pending.remove(&token).expect("pending read");
                            done.push(CompletedRead {
                                token,
                                replica: st.replica,
                                data: st.data.expect("data read before unlock"),
                            });
                        }
                        RdLockOutcome::Retry { observed } => {
                            // Another reader changed the count; retry with it.
                            st.phase = Phase::Unlocking { count: observed };
                            let gen = self
                                .locks
                                .rd_unlock(client, ctx, st.lock_id, st.replica, observed)
                                .expect("unlock retry issue");
                            self.gen_to_token.insert(gen, token);
                        }
                        RdLockOutcome::WriterHeld { holder } => {
                            unreachable!("writer acquired over a held read lock: {holder:#x}")
                        }
                    }
                }
                Phase::Reading => unreachable!("group ack during data read"),
            }
        }

        // Data READ completions.
        for cqe in ctx.poll_cq(self.client_node, self.cq, 64) {
            assert_eq!(cqe.status, rnicsim::CqeStatus::Success, "{cqe:?}");
            let token = cqe.wr_id;
            let st = self.pending.get_mut(&token).expect("pending read");
            debug_assert!(matches!(st.phase, Phase::Reading));
            let slot = self.buf_base + (token % self.buf_slots as u64) * READ_SLOT;
            let data = ctx
                .mem(self.client_node)
                .read_vec(slot, st.len)
                .expect("bounce slot in bounds");
            st.data = Some(data);
            // Release: the count is at least 1 (ours); start optimistic.
            st.phase = Phase::Unlocking { count: 1 };
            let gen = self
                .locks
                .rd_unlock(client, ctx, st.lock_id, st.replica, 1)
                .expect("unlock issue");
            self.gen_to_token.insert(gen, token);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::HyperLoopGroup;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use crate::lock::WrLockOutcome;
    use crate::ops::GroupOp;
    use netsim::FabricConfig;
    use rnicsim::{NicConfig, Payload};
    use simcore::Simulation;

    fn setup() -> (
        Simulation<FabricSim>,
        HyperLoopGroup,
        ReplicaReader,
        LockTable,
    ) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            31,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        sim.run();
        let locks = LockTable::new(1 << 20, 16);
        let reader = drive(&mut sim, |ctx| {
            ReplicaReader::setup(ctx.fab, &group.client, &nodes, locks)
        });
        (sim, group, reader, locks)
    }

    fn settle_reads(
        sim: &mut Simulation<FabricSim>,
        group: &mut HyperLoopGroup,
        reader: &mut ReplicaReader,
    ) -> Vec<CompletedRead> {
        let mut done = Vec::new();
        for _ in 0..16 {
            sim.run();
            let acks = drive(sim, |ctx| group.client.poll(ctx));
            done.extend(drive(sim, |ctx| reader.pump(&mut group.client, ctx, &acks)));
            if reader.in_flight() == 0 && sim.queue.is_empty() {
                break;
            }
        }
        done
    }

    #[test]
    fn locked_read_returns_replicated_bytes() {
        let (mut sim, mut group, mut reader, _locks) = setup();
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: 256,
                        data: Payload::copy_from(b"read me from any replica"),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));

        // Read from every replica in turn; all serve identical bytes.
        for replica in 0..3u32 {
            drive(&mut sim, |ctx| {
                reader.begin(&mut group.client, ctx, replica, 0, 256, 24)
            });
            let done = settle_reads(&mut sim, &mut group, &mut reader);
            assert_eq!(done.len(), 1, "read from replica {replica} incomplete");
            assert_eq!(done[0].data, b"read me from any replica");
            assert_eq!(done[0].replica, replica);
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn read_lock_cycles_the_word_back_to_zero() {
        let (mut sim, mut group, mut reader, locks) = setup();
        drive(&mut sim, |ctx| {
            reader.begin(&mut group.client, ctx, 1, 3, 0, 64)
        });
        settle_reads(&mut sim, &mut group, &mut reader);
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(3);
        assert_eq!(
            sim.model.fab.mem(NodeId(2)).read_vec(addr, 8).unwrap(),
            0u64.to_le_bytes(),
            "read lock leaked"
        );
    }

    #[test]
    fn reader_retries_past_a_writer() {
        let (mut sim, mut group, mut reader, locks) = setup();
        // Writer takes the group lock.
        let wr_gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 5, 42).unwrap()
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        let ack = acks.iter().find(|a| a.gen == wr_gen).unwrap();
        assert_eq!(locks.interpret_wr_lock(ack, 5, 42), WrLockOutcome::Acquired);

        // Reader starts; its first lock attempt sees the writer.
        drive(&mut sim, |ctx| {
            reader.begin(&mut group.client, ctx, 0, 5, 128, 16)
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        let done = drive(&mut sim, |ctx| reader.pump(&mut group.client, ctx, &acks));
        assert!(done.is_empty(), "read must not complete under a writer");
        assert_eq!(reader.in_flight(), 1);

        // Writer releases; the reader's retry goes through.
        drive(&mut sim, |ctx| {
            locks.wr_unlock(&mut group.client, ctx, 5, 42).unwrap()
        });
        let done = settle_reads(&mut sim, &mut group, &mut reader);
        assert_eq!(done.len(), 1, "reader starved after writer release");
    }

    #[test]
    fn concurrent_reads_on_different_replicas() {
        let (mut sim, mut group, mut reader, _locks) = setup();
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: 0,
                        data: Payload::filled(9, 1024),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));

        drive(&mut sim, |ctx| {
            for replica in 0..3u32 {
                reader.begin(&mut group.client, ctx, replica, 0, 0, 1024);
            }
        });
        let done = settle_reads(&mut sim, &mut group, &mut reader);
        assert_eq!(done.len(), 3, "all three replicas serve concurrently");
        for r in &done {
            assert_eq!(r.data, vec![9; 1024]);
        }
    }
}
