//! Consistent replica reads (paper §5, "Locking and Isolation").
//!
//! HyperLoop's write locks keep all replicas identical, so *any* replica can
//! serve a consistent read — that is the read-throughput argument of §5/§7.
//! A locked read is three steps, all initiated by the client, none touching
//! a replica CPU:
//!
//! 1. a per-replica read-lock gCAS (`expected → expected + 1`) on the lock
//!    word, scoped to the one replica being read;
//! 2. a one-sided RDMA READ of the data from that replica;
//! 3. the matching read-unlock gCAS.
//!
//! [`ReplicaReader`] owns one client→replica QP per chain member and drives
//! any number of concurrent reads as an ack-driven state machine.

use crate::group::GroupClient;
use crate::lock::{LockBackoff, LockTable, RdLockOutcome};
use crate::ops::GroupAck;
use netsim::NodeId;
use rnicsim::{wqe_flags, CqId, NicCtx, Opcode, QpId, Wqe};
use simcore::SimTime;
use std::collections::HashMap;

/// Maximum bytes of one locked read.
pub const READ_SLOT: u64 = 8192;

#[derive(Debug)]
enum Phase {
    Locking { expected: u64 },
    Reading,
    Unlocking { count: u64 },
}

#[derive(Debug)]
struct ReadState {
    replica: u32,
    lock_id: u32,
    offset: u64,
    len: u64,
    phase: Phase,
    data: Option<Vec<u8>>,
}

/// A completed locked read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRead {
    /// Token returned by [`ReplicaReader::begin`].
    pub token: u64,
    /// Chain position served from.
    pub replica: u32,
    /// The bytes read under the lock.
    pub data: Vec<u8>,
}

/// Client-side machinery for lock-protected one-sided replica reads.
#[derive(Debug)]
pub struct ReplicaReader {
    client_node: NodeId,
    qps: Vec<QpId>,
    cq: CqId,
    buf_base: u64,
    buf_slots: u32,
    locks: LockTable,
    shared_base: u64,
    pending: HashMap<u64, ReadState>,
    /// gCAS generation → read token.
    gen_to_token: HashMap<u64, u64>,
    next_token: u64,
    /// Jittered retry pacing for contended lock CASes. Immediate retries
    /// phase-lock with other contenders under churn (the reader/writer
    /// livelock); spaced retries let a writer's CAS land in a gap.
    backoff: LockBackoff,
    /// Lock retries waiting out their backoff delay, in arrival order.
    deferred: Vec<(SimTime, u64)>,
    /// Total lock-CAS retries (diagnostics).
    pub lock_retries: u64,
}

impl ReplicaReader {
    /// Wires one read QP from the client to every replica and a bounce
    /// buffer; `locks` is the same table the writers use.
    pub fn setup(
        fab: &mut rnicsim::RdmaFabric,
        client: &GroupClient,
        replica_nodes: &[NodeId],
        locks: LockTable,
    ) -> ReplicaReader {
        let client_node = client.node();
        let cq = fab.create_cq(client_node);
        let buf_slots = 32u32;
        let buf_base = fab.alloc(client_node, READ_SLOT * buf_slots as u64);
        let mut qps = Vec::with_capacity(replica_nodes.len());
        for &rn in replica_nodes {
            let qp = fab.create_qp(client_node, cq, cq);
            let rcq = fab.create_cq(rn);
            let rqp = fab.create_qp(rn, rcq, rcq);
            fab.connect(client_node, qp, rn, rqp);
            qps.push(qp);
        }
        ReplicaReader {
            client_node,
            qps,
            cq,
            buf_base,
            buf_slots,
            locks,
            shared_base: client.layout().shared_base,
            pending: HashMap::new(),
            gen_to_token: HashMap::new(),
            next_token: 0,
            backoff: LockBackoff::new(0x5EED ^ client_node.0 as u64),
            deferred: Vec::new(),
            lock_retries: 0,
        }
    }

    /// Replaces the retry backoff (e.g. to desynchronize several readers
    /// sharing one client node with distinct seeds).
    pub fn set_backoff(&mut self, backoff: LockBackoff) {
        self.backoff = backoff;
    }

    /// Reads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Starts a locked read of `[offset, offset+len)` from chain position
    /// `replica`, protected by `lock_id`. Completion arrives from
    /// [`ReplicaReader::pump`].
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`READ_SLOT`] or `replica` is out of range.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn begin(
        &mut self,
        client: &mut GroupClient,
        ctx: &mut NicCtx<'_>,
        replica: u32,
        lock_id: u32,
        offset: u64,
        len: u64,
    ) -> u64 {
        assert!(len <= READ_SLOT, "read larger than the bounce slot");
        assert!((replica as usize) < self.qps.len(), "replica out of range");
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            ReadState {
                replica,
                lock_id,
                offset,
                len,
                phase: Phase::Locking { expected: 0 },
                data: None,
            },
        );
        let gen = self
            .locks
            .rd_lock(client, ctx, lock_id, replica, 0)
            .expect("lock issue");
        self.gen_to_token.insert(gen, token);
        token
    }

    fn post_data_read(&mut self, ctx: &mut NicCtx<'_>, token: u64) {
        let st = &self.pending[&token];
        let slot = self.buf_base + (token % self.buf_slots as u64) * READ_SLOT;
        ctx.post_send(
            self.client_node,
            self.qps[st.replica as usize],
            Wqe {
                opcode: Opcode::Read,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: slot,
                len: st.len,
                remote_addr: self.shared_base + st.offset,
                wr_id: token,
                ..Wqe::default()
            },
        );
    }

    /// Drives every pending read with the group acks the caller polled from
    /// its [`GroupClient`] (lock/unlock legs) and this reader's own READ
    /// completions. Returns finished reads.
    pub fn pump(
        &mut self,
        client: &mut GroupClient,
        ctx: &mut NicCtx<'_>,
        group_acks: &[GroupAck],
    ) -> Vec<CompletedRead> {
        let mut done = Vec::new();

        // Lock / unlock acks.
        for ack in group_acks {
            let Some(&token) = self.gen_to_token.get(&ack.gen) else {
                continue;
            };
            self.gen_to_token.remove(&ack.gen);
            let st = self.pending.get_mut(&token).expect("pending read");
            match st.phase {
                Phase::Locking { expected } => {
                    match self.locks.interpret_rd_lock(ack, st.replica, expected) {
                        RdLockOutcome::Acquired => {
                            self.backoff.reset();
                            st.phase = Phase::Reading;
                            self.post_data_read(ctx, token);
                        }
                        RdLockOutcome::Retry { observed } => {
                            // Re-read: the next compare is the value the
                            // word actually held, not the stale expectation.
                            st.phase = Phase::Locking { expected: observed };
                            let due = ctx.now.saturating_add(self.backoff.next_delay());
                            self.deferred.push((due, token));
                        }
                        RdLockOutcome::WriterHeld { .. } => {
                            // Writer active: it will release to zero, so
                            // retry from scratch — after a jittered delay,
                            // so churning readers do not phase-lock against
                            // the writer's own retries.
                            st.phase = Phase::Locking { expected: 0 };
                            let due = ctx.now.saturating_add(self.backoff.next_delay());
                            self.deferred.push((due, token));
                        }
                    }
                }
                Phase::Unlocking { count } => {
                    match self.locks.interpret_rd_lock(ack, st.replica, count) {
                        RdLockOutcome::Acquired => {
                            let st = self.pending.remove(&token).expect("pending read");
                            done.push(CompletedRead {
                                token,
                                replica: st.replica,
                                data: st.data.expect("data read before unlock"),
                            });
                        }
                        RdLockOutcome::Retry { observed } => {
                            // Another reader changed the count; retry with it.
                            st.phase = Phase::Unlocking { count: observed };
                            let gen = self
                                .locks
                                .rd_unlock(client, ctx, st.lock_id, st.replica, observed)
                                .expect("unlock retry issue");
                            self.gen_to_token.insert(gen, token);
                        }
                        RdLockOutcome::WriterHeld { holder } => {
                            unreachable!("writer acquired over a held read lock: {holder:#x}")
                        }
                    }
                }
                Phase::Reading => unreachable!("group ack during data read"),
            }
        }

        // Data READ completions.
        let cqes = ctx.poll_cq(self.client_node, self.cq, 64);
        let idle = group_acks.is_empty() && cqes.is_empty();
        for cqe in cqes {
            assert_eq!(cqe.status, rnicsim::CqeStatus::Success, "{cqe:?}");
            let token = cqe.wr_id;
            let st = self.pending.get_mut(&token).expect("pending read");
            debug_assert!(matches!(st.phase, Phase::Reading));
            let slot = self.buf_base + (token % self.buf_slots as u64) * READ_SLOT;
            let data = ctx
                .mem(self.client_node)
                .read_vec(slot, st.len)
                .expect("bounce slot in bounds");
            st.data = Some(data);
            // Release: the count is at least 1 (ours); start optimistic.
            st.phase = Phase::Unlocking { count: 1 };
            let gen = self
                .locks
                .rd_unlock(client, ctx, st.lock_id, st.replica, 1)
                .expect("unlock issue");
            self.gen_to_token.insert(gen, token);
        }

        // Deferred lock retries whose backoff elapsed. An idle pump (no
        // acks, no completions) means the fabric drained while we waited:
        // further wall-clock delay cannot be observed, so fire them now.
        let mut i = 0;
        while i < self.deferred.len() {
            let (due, token) = self.deferred[i];
            if due <= ctx.now || idle {
                self.deferred.swap_remove(i);
                let st = &self.pending[&token];
                let Phase::Locking { expected } = st.phase else {
                    unreachable!("deferred retry outside the lock phase");
                };
                self.lock_retries += 1;
                let gen = self
                    .locks
                    .rd_lock(client, ctx, st.lock_id, st.replica, expected)
                    .expect("lock retry issue");
                self.gen_to_token.insert(gen, token);
            } else {
                i += 1;
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::HyperLoopGroup;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use crate::lock::{WrLockOutcome, WrUndo, WRITER_BIT};
    use crate::ops::GroupOp;
    use netsim::FabricConfig;
    use rnicsim::{NicConfig, Payload};
    use simcore::Simulation;

    fn setup() -> (
        Simulation<FabricSim>,
        HyperLoopGroup,
        ReplicaReader,
        LockTable,
    ) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            31,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        sim.run();
        let locks = LockTable::new(1 << 20, 16);
        let reader = drive(&mut sim, |ctx| {
            ReplicaReader::setup(ctx.fab, &group.client, &nodes, locks)
        });
        (sim, group, reader, locks)
    }

    fn settle_reads(
        sim: &mut Simulation<FabricSim>,
        group: &mut HyperLoopGroup,
        reader: &mut ReplicaReader,
    ) -> Vec<CompletedRead> {
        let mut done = Vec::new();
        for _ in 0..16 {
            sim.run();
            let acks = drive(sim, |ctx| group.client.poll(ctx));
            done.extend(drive(sim, |ctx| reader.pump(&mut group.client, ctx, &acks)));
            if reader.in_flight() == 0 && sim.queue.is_empty() {
                break;
            }
        }
        done
    }

    #[test]
    fn locked_read_returns_replicated_bytes() {
        let (mut sim, mut group, mut reader, _locks) = setup();
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: 256,
                        data: Payload::copy_from(b"read me from any replica"),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));

        // Read from every replica in turn; all serve identical bytes.
        for replica in 0..3u32 {
            drive(&mut sim, |ctx| {
                reader.begin(&mut group.client, ctx, replica, 0, 256, 24)
            });
            let done = settle_reads(&mut sim, &mut group, &mut reader);
            assert_eq!(done.len(), 1, "read from replica {replica} incomplete");
            assert_eq!(done[0].data, b"read me from any replica");
            assert_eq!(done[0].replica, replica);
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn read_lock_cycles_the_word_back_to_zero() {
        let (mut sim, mut group, mut reader, locks) = setup();
        drive(&mut sim, |ctx| {
            reader.begin(&mut group.client, ctx, 1, 3, 0, 64)
        });
        settle_reads(&mut sim, &mut group, &mut reader);
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(3);
        assert_eq!(
            sim.model.fab.mem(NodeId(2)).read_vec(addr, 8).unwrap(),
            0u64.to_le_bytes(),
            "read lock leaked"
        );
    }

    #[test]
    fn reader_retries_past_a_writer() {
        let (mut sim, mut group, mut reader, locks) = setup();
        // Writer takes the group lock.
        let wr_gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 5, 42).unwrap()
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        let ack = acks.iter().find(|a| a.gen == wr_gen).unwrap();
        assert_eq!(locks.interpret_wr_lock(ack, 5, 42), WrLockOutcome::Acquired);

        // Reader starts; its first lock attempt sees the writer.
        drive(&mut sim, |ctx| {
            reader.begin(&mut group.client, ctx, 0, 5, 128, 16)
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        let done = drive(&mut sim, |ctx| reader.pump(&mut group.client, ctx, &acks));
        assert!(done.is_empty(), "read must not complete under a writer");
        assert_eq!(reader.in_flight(), 1);

        // Writer releases; the reader's retry goes through.
        drive(&mut sim, |ctx| {
            locks.wr_unlock(&mut group.client, ctx, 5, 42).unwrap()
        });
        let done = settle_reads(&mut sim, &mut group, &mut reader);
        assert_eq!(done.len(), 1, "reader starved after writer release");
    }

    /// Livelock regression: a writer retrying `wr_lock` against sustained
    /// reader churn on the same lock word must reach acquisition. Before
    /// the jittered [`LockBackoff`], every contender retried on the ack
    /// instant and the writer's CAS never observed a free word.
    #[test]
    fn writer_acquires_through_sustained_reader_churn() {
        let (mut sim, mut group, mut reader, locks) = setup();
        const LOCK: u32 = 2;
        const OWNER: u64 = 7;
        let total_churn = 60u64;
        let mut backoff = LockBackoff::new(11);
        let mut begun = 0u64;
        let mut completed = 0u64;
        let mut writer_gen: Option<u64> = None;
        let mut undo: Option<(WrUndo, u64)> = None;
        let mut writer_due = simcore::SimTime::ZERO;
        let mut attempts = 0u32;
        let mut acquired = false;

        for _ in 0..600 {
            if acquired {
                break;
            }
            // Keep up to three locked reads in flight while churn lasts,
            // round-robin over the replicas.
            drive(&mut sim, |ctx| {
                while begun < total_churn && reader.in_flight() < 3 {
                    reader.begin(&mut group.client, ctx, (begun % 3) as u32, LOCK, 0, 32);
                    begun += 1;
                }
            });
            let now = sim.queue.now();
            if writer_gen.is_none() && undo.is_none() && (now >= writer_due || sim.queue.is_empty())
            {
                attempts += 1;
                writer_gen = Some(drive(&mut sim, |ctx| {
                    locks.wr_lock(&mut group.client, ctx, LOCK, OWNER).unwrap()
                }));
            }
            sim.run();
            let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
            completed +=
                drive(&mut sim, |ctx| reader.pump(&mut group.client, ctx, &acks)).len() as u64;
            for ack in &acks {
                if writer_gen == Some(ack.gen) {
                    writer_gen = None;
                    match locks.interpret_wr_lock(ack, LOCK, OWNER) {
                        WrLockOutcome::Acquired => acquired = true,
                        WrLockOutcome::Busy { .. } => {
                            writer_due = sim.queue.now().saturating_add(backoff.next_delay());
                        }
                        WrLockOutcome::Partial { undo: u } => {
                            let gen = drive(&mut sim, |ctx| {
                                u.issue(&locks, &mut group.client, ctx).unwrap()
                            });
                            undo = Some((u, gen));
                        }
                    }
                } else if let Some((mut u, ugen)) = undo {
                    if ack.gen == ugen {
                        if u.absorb(ack) {
                            undo = None;
                            writer_due = sim.queue.now().saturating_add(backoff.next_delay());
                        } else {
                            let gen = drive(&mut sim, |ctx| {
                                u.issue(&locks, &mut group.client, ctx).unwrap()
                            });
                            undo = Some((u, gen));
                        }
                    }
                }
            }
        }
        assert!(
            acquired,
            "writer livelocked under reader churn (attempts={attempts})"
        );
        assert!(attempts >= 2, "the writer must actually have contended");
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(LOCK);
        for n in [NodeId(1), NodeId(2), NodeId(3)] {
            assert_eq!(
                sim.model.fab.mem(n).read_vec(addr, 8).unwrap(),
                (WRITER_BIT | OWNER).to_le_bytes(),
                "writer must hold the word group-wide on {n}"
            );
        }
        // Release; every remaining churn read must then complete.
        drive(&mut sim, |ctx| {
            locks
                .wr_unlock(&mut group.client, ctx, LOCK, OWNER)
                .unwrap()
        });
        for _ in 0..600 {
            drive(&mut sim, |ctx| {
                while begun < total_churn && reader.in_flight() < 3 {
                    reader.begin(&mut group.client, ctx, (begun % 3) as u32, LOCK, 0, 32);
                    begun += 1;
                }
            });
            sim.run();
            let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
            completed +=
                drive(&mut sim, |ctx| reader.pump(&mut group.client, ctx, &acks)).len() as u64;
            if completed == total_churn {
                break;
            }
        }
        assert_eq!(completed, total_churn, "reads starved after release");
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn concurrent_reads_on_different_replicas() {
        let (mut sim, mut group, mut reader, _locks) = setup();
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: 0,
                        data: Payload::filled(9, 1024),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));

        drive(&mut sim, |ctx| {
            for replica in 0..3u32 {
                reader.begin(&mut group.client, ctx, replica, 0, 0, 1024);
            }
        });
        let done = settle_reads(&mut sim, &mut group, &mut reader);
        assert_eq!(done.len(), 3, "all three replicas serve concurrently");
        for r in &done {
            assert_eq!(r.data, vec![9; 1024]);
        }
    }
}
