//! Failure detection and chain membership (paper §5, recovery).
//!
//! HyperLoop deliberately leaves the *control path* to the application:
//! "group failures are detected and repaired in an application specific
//! manner". This module provides the pieces both case-study applications
//! share: a heartbeat-based failure detector (the paper's "configurable
//! number of consecutive missing heartbeats" rule, after Aguilera et al.)
//! and an epoch-numbered chain view with a recovery plan generator.

use netsim::NodeId;
use simcore::{SimDuration, SimTime};

/// Failure-detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Expected heartbeat period.
    pub interval: SimDuration,
    /// Consecutive missed heartbeats before a member is suspected.
    pub misses_allowed: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_millis(10),
            misses_allowed: 3,
        }
    }
}

/// Tracks the last heartbeat from every chain member.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    config: HeartbeatConfig,
    last_seen: Vec<SimTime>,
}

impl HeartbeatMonitor {
    /// A monitor over `members` chain positions, all considered alive at
    /// `now`.
    pub fn new(members: usize, config: HeartbeatConfig, now: SimTime) -> Self {
        HeartbeatMonitor {
            config,
            last_seen: vec![now; members],
        }
    }

    /// Records a heartbeat from chain position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn beat(&mut self, idx: usize, now: SimTime) {
        self.last_seen[idx] = self.last_seen[idx].max(now);
    }

    /// The suspicion deadline: silence longer than this marks a failure.
    pub fn deadline(&self) -> SimDuration {
        self.config.interval * self.config.misses_allowed as u64
    }

    /// Chain positions whose silence exceeds the deadline.
    pub fn suspected(&self, now: SimTime) -> Vec<usize> {
        let deadline = self.deadline();
        self.last_seen
            .iter()
            .enumerate()
            .filter(|(_, &t)| now.since(t.min(now)) > deadline)
            .map(|(i, _)| i)
            .collect()
    }

    /// Forgets and re-admits position `idx` (after recovery).
    pub fn reset(&mut self, idx: usize, now: SimTime) {
        self.last_seen[idx] = now;
    }
}

/// An epoch-numbered view of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainView {
    epoch: u64,
    members: Vec<NodeId>,
}

impl ChainView {
    /// The initial view (epoch 0).
    pub fn new(members: Vec<NodeId>) -> Self {
        ChainView { epoch: 0, members }
    }

    /// Current epoch; bumps on every membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Members in chain order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Removes a failed member, bumping the epoch. Returns false if the
    /// node was not a member.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let before = self.members.len();
        self.members.retain(|&m| m != node);
        if self.members.len() != before {
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Appends a recovered/new member at the tail, bumping the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the node is already a member.
    pub fn add_tail(&mut self, node: NodeId) {
        assert!(!self.members.contains(&node), "{node} already in the chain");
        self.members.push(node);
        self.epoch += 1;
    }
}

/// One step of the application-driven recovery protocol (paper §5: pause
/// writes, catch the new member up from a live copy, rebuild the HyperLoop
/// data path, resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Stop admitting new transactions.
    PauseWrites,
    /// Copy `bytes` of state (log + database) from a live member.
    CopyState {
        /// Source (live) node.
        from: NodeId,
        /// Destination (joining) node.
        to: NodeId,
        /// Bytes to transfer.
        bytes: u64,
    },
    /// Tear down and re-run group setup over the new view.
    RebuildDataPath {
        /// The epoch the rebuilt group serves.
        epoch: u64,
    },
    /// Re-admit writes.
    ResumeWrites,
}

/// Plans the catch-up of `joining` from `source` under the given view.
pub fn plan_rejoin(
    view: &ChainView,
    source: NodeId,
    joining: NodeId,
    bytes: u64,
) -> Vec<RecoveryStep> {
    vec![
        RecoveryStep::PauseWrites,
        RecoveryStep::CopyState {
            from: source,
            to: joining,
            bytes,
        },
        RecoveryStep::RebuildDataPath {
            epoch: view.epoch() + 1,
        },
        RecoveryStep::ResumeWrites,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_suspects_after_deadline() {
        let cfg = HeartbeatConfig::default();
        let mut m = HeartbeatMonitor::new(3, cfg, SimTime::ZERO);
        let t = SimTime::from_millis(25);
        m.beat(0, t);
        m.beat(2, t);
        // Member 1 silent for 25ms < 30ms deadline: not yet suspected.
        assert!(m.suspected(t).is_empty());
        // At 31ms, member 1 (last seen at 0) is suspected.
        let t2 = SimTime::from_millis(31);
        assert_eq!(m.suspected(t2), vec![1]);
        m.reset(1, t2);
        assert!(m.suspected(t2).is_empty());
    }

    #[test]
    fn beats_never_move_backwards() {
        let mut m = HeartbeatMonitor::new(1, HeartbeatConfig::default(), SimTime::ZERO);
        m.beat(0, SimTime::from_millis(50));
        m.beat(0, SimTime::from_millis(10)); // stale beat
        assert!(m.suspected(SimTime::from_millis(60)).is_empty());
        assert_eq!(m.suspected(SimTime::from_millis(81)), vec![0]);
    }

    #[test]
    fn view_epoch_advances_on_changes() {
        let mut v = ChainView::new(vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(v.epoch(), 0);
        assert!(v.remove(NodeId(2)));
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.members(), &[NodeId(1), NodeId(3)]);
        assert!(!v.remove(NodeId(2)), "double-remove is a no-op");
        assert_eq!(v.epoch(), 1);
        v.add_tail(NodeId(4));
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.members(), &[NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn rejoin_plan_shape() {
        let v = ChainView::new(vec![NodeId(1), NodeId(3)]);
        let plan = plan_rejoin(&v, NodeId(1), NodeId(4), 1 << 20);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0], RecoveryStep::PauseWrites);
        assert!(matches!(plan[1], RecoveryStep::CopyState { bytes, .. } if bytes == 1 << 20));
        assert!(matches!(
            plan[2],
            RecoveryStep::RebuildDataPath { epoch: 1 }
        ));
        assert_eq!(plan[3], RecoveryStep::ResumeWrites);
    }

    #[test]
    #[should_panic(expected = "already in the chain")]
    fn duplicate_member_panics() {
        let mut v = ChainView::new(vec![NodeId(1)]);
        v.add_tail(NodeId(1));
    }
}
