//! Failure detection and chain membership (paper §5, recovery).
//!
//! HyperLoop deliberately leaves the *control path* to the application:
//! "group failures are detected and repaired in an application specific
//! manner". This module provides the pieces both case-study applications
//! share: a heartbeat-based failure detector (the paper's "configurable
//! number of consecutive missing heartbeats" rule, after Aguilera et al.)
//! and an epoch-numbered chain view with a recovery plan generator.

use netsim::NodeId;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Failure-detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Expected heartbeat period.
    pub interval: SimDuration,
    /// Consecutive missed heartbeats before a member is suspected.
    pub misses_allowed: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_millis(10),
            misses_allowed: 3,
        }
    }
}

/// Tracks the last heartbeat from every chain member, keyed by [`NodeId`].
///
/// Keying by node identity (not chain position) matters because
/// [`ChainView::remove`] shifts every later member's position: a beat
/// addressed by stale position would mis-attribute to the wrong member, and
/// a position past the shrunk chain would panic. Call
/// [`HeartbeatMonitor::sync_view`] after every view change to keep the
/// tracked member set in step with the view.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    config: HeartbeatConfig,
    last_seen: BTreeMap<NodeId, SimTime>,
    view_epoch: u64,
}

impl HeartbeatMonitor {
    /// A monitor over the view's members, all considered alive at `now`.
    pub fn new(view: &ChainView, config: HeartbeatConfig, now: SimTime) -> Self {
        HeartbeatMonitor {
            config,
            last_seen: view.members().iter().map(|&n| (n, now)).collect(),
            view_epoch: view.epoch(),
        }
    }

    /// Records a heartbeat from `node`. Beats from nodes outside the
    /// current view (e.g. a member removed while its heartbeat was in
    /// flight) are ignored, and stale beats never move a member backwards.
    pub fn beat(&mut self, node: NodeId, now: SimTime) {
        if let Some(t) = self.last_seen.get_mut(&node) {
            *t = (*t).max(now);
        }
    }

    /// The suspicion deadline: silence longer than this marks a failure.
    pub fn deadline(&self) -> SimDuration {
        self.config.interval * self.config.misses_allowed as u64
    }

    /// Members whose silence exceeds the deadline, in `NodeId` order.
    pub fn suspected(&self, now: SimTime) -> Vec<NodeId> {
        let deadline = self.deadline();
        self.last_seen
            .iter()
            .filter(|(_, &t)| now.since(t.min(now)) > deadline)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Forgets and re-admits `node` (after recovery).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a tracked member.
    pub fn reset(&mut self, node: NodeId, now: SimTime) {
        let t = self
            .last_seen
            .get_mut(&node)
            .unwrap_or_else(|| panic!("{node} is not a tracked member"));
        *t = now;
    }

    /// Re-sizes the tracked set to the view's membership if the view's
    /// epoch changed: removed members are dropped, new members are admitted
    /// as alive at `now`, surviving members keep their history.
    pub fn sync_view(&mut self, view: &ChainView, now: SimTime) {
        if view.epoch() == self.view_epoch {
            return;
        }
        self.last_seen.retain(|n, _| view.members().contains(n));
        for &n in view.members() {
            self.last_seen.entry(n).or_insert(now);
        }
        self.view_epoch = view.epoch();
    }

    /// Number of members currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }
}

/// An epoch-numbered view of the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainView {
    epoch: u64,
    members: Vec<NodeId>,
}

impl ChainView {
    /// The initial view (epoch 0).
    pub fn new(members: Vec<NodeId>) -> Self {
        ChainView { epoch: 0, members }
    }

    /// Current epoch; bumps on every membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Members in chain order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Removes a failed member, bumping the epoch. Returns false if the
    /// node was not a member.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let before = self.members.len();
        self.members.retain(|&m| m != node);
        if self.members.len() != before {
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Appends a recovered/new member at the tail, bumping the epoch.
    ///
    /// # Panics
    ///
    /// Panics if the node is already a member.
    pub fn add_tail(&mut self, node: NodeId) {
        assert!(!self.members.contains(&node), "{node} already in the chain");
        self.members.push(node);
        self.epoch += 1;
    }
}

/// One step of the application-driven recovery protocol (paper §5: pause
/// writes, catch the new member up from a live copy, rebuild the HyperLoop
/// data path, resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Stop admitting new transactions.
    PauseWrites,
    /// Copy `bytes` of state (log + database) from a live member.
    CopyState {
        /// Source (live) node.
        from: NodeId,
        /// Destination (joining) node.
        to: NodeId,
        /// Bytes to transfer.
        bytes: u64,
    },
    /// Tear down and re-run group setup over the new view.
    RebuildDataPath {
        /// The epoch the rebuilt group serves.
        epoch: u64,
    },
    /// Re-admit writes.
    ResumeWrites,
}

/// Plans the catch-up of `joining` from `source` under the given view.
pub fn plan_rejoin(
    view: &ChainView,
    source: NodeId,
    joining: NodeId,
    bytes: u64,
) -> Vec<RecoveryStep> {
    vec![
        RecoveryStep::PauseWrites,
        RecoveryStep::CopyState {
            from: source,
            to: joining,
            bytes,
        },
        RecoveryStep::RebuildDataPath {
            epoch: view.epoch() + 1,
        },
        RecoveryStep::ResumeWrites,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_suspects_after_deadline() {
        let cfg = HeartbeatConfig::default();
        let view = ChainView::new(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let mut m = HeartbeatMonitor::new(&view, cfg, SimTime::ZERO);
        let t = SimTime::from_millis(25);
        m.beat(NodeId(1), t);
        m.beat(NodeId(3), t);
        // Node 2 silent for 25ms < 30ms deadline: not yet suspected.
        assert!(m.suspected(t).is_empty());
        // At 31ms, node 2 (last seen at 0) is suspected.
        let t2 = SimTime::from_millis(31);
        assert_eq!(m.suspected(t2), vec![NodeId(2)]);
        m.reset(NodeId(2), t2);
        assert!(m.suspected(t2).is_empty());
    }

    #[test]
    fn beats_never_move_backwards() {
        let view = ChainView::new(vec![NodeId(7)]);
        let mut m = HeartbeatMonitor::new(&view, HeartbeatConfig::default(), SimTime::ZERO);
        m.beat(NodeId(7), SimTime::from_millis(50));
        m.beat(NodeId(7), SimTime::from_millis(10)); // stale beat
        assert!(m.suspected(SimTime::from_millis(60)).is_empty());
        assert_eq!(m.suspected(SimTime::from_millis(81)), vec![NodeId(7)]);
    }

    #[test]
    fn monitor_survives_membership_churn() {
        // The position-shift trap: removing node 2 moves node 3 from chain
        // position 2 to 1. A NodeId-keyed monitor is unaffected.
        let mut view = ChainView::new(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let mut m = HeartbeatMonitor::new(&view, HeartbeatConfig::default(), SimTime::ZERO);
        assert!(view.remove(NodeId(2)));
        let t = SimTime::from_millis(5);
        m.sync_view(&view, t);
        assert_eq!(m.tracked(), 2);
        // A straggler beat from the removed node is dropped, not
        // mis-attributed to whoever inherited its position.
        m.beat(NodeId(2), t);
        m.beat(NodeId(3), t);
        // Only node 1 (silent since 0) trips the 30ms deadline.
        assert_eq!(m.suspected(SimTime::from_millis(31)), vec![NodeId(1)]);

        // A replacement admitted mid-run starts its grace period at the
        // sync time, not at monitor birth.
        view.add_tail(NodeId(4));
        let t2 = SimTime::from_millis(20);
        m.sync_view(&view, t2);
        assert_eq!(m.tracked(), 3);
        assert!(!m.suspected(SimTime::from_millis(31)).contains(&NodeId(4)));
        m.beat(NodeId(3), SimTime::from_millis(25));
        assert_eq!(
            m.suspected(SimTime::from_millis(51)),
            vec![NodeId(1), NodeId(4)],
            "node 4's grace runs from the sync at 20ms, so 51ms trips it"
        );

        // Same-epoch syncs are no-ops.
        let before = m.clone();
        m.sync_view(&view, SimTime::from_millis(40));
        assert_eq!(m.tracked(), before.tracked());
    }

    #[test]
    fn view_epoch_advances_on_changes() {
        let mut v = ChainView::new(vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(v.epoch(), 0);
        assert!(v.remove(NodeId(2)));
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.members(), &[NodeId(1), NodeId(3)]);
        assert!(!v.remove(NodeId(2)), "double-remove is a no-op");
        assert_eq!(v.epoch(), 1);
        v.add_tail(NodeId(4));
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.members(), &[NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn rejoin_plan_shape() {
        let v = ChainView::new(vec![NodeId(1), NodeId(3)]);
        let plan = plan_rejoin(&v, NodeId(1), NodeId(4), 1 << 20);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0], RecoveryStep::PauseWrites);
        assert!(matches!(plan[1], RecoveryStep::CopyState { bytes, .. } if bytes == 1 << 20));
        assert!(matches!(
            plan[2],
            RecoveryStep::RebuildDataPath { epoch: 1 }
        ));
        assert_eq!(plan[3], RecoveryStep::ResumeWrites);
    }

    #[test]
    #[should_panic(expected = "already in the chain")]
    fn duplicate_member_panics() {
        let mut v = ChainView::new(vec![NodeId(1)]);
        v.add_tail(NodeId(1));
    }
}
