//! The four group primitives, as issued by a client (paper Table 1).

use rnicsim::Payload;
use std::fmt;

/// Selects which replicas execute the CAS leg of a [`GroupOp::Cas`]
/// (the paper's *execute map*). Bit `i` covers chain position `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExecuteMap(pub u64);

impl ExecuteMap {
    /// Every replica executes.
    pub fn all(group_size: u32) -> Self {
        ExecuteMap(if group_size >= 64 {
            u64::MAX
        } else {
            (1u64 << group_size) - 1
        })
    }

    /// No replica executes.
    pub fn none() -> Self {
        ExecuteMap(0)
    }

    /// Whether chain position `idx` is selected.
    pub fn contains(&self, idx: u32) -> bool {
        self.0 & (1 << idx) != 0
    }

    /// Returns a copy with position `idx` selected.
    pub fn with(mut self, idx: u32) -> Self {
        self.0 |= 1 << idx;
        self
    }

    /// Returns a copy with position `idx` deselected.
    pub fn without(mut self, idx: u32) -> Self {
        self.0 &= !(1 << idx);
        self
    }

    /// True when no replica is selected.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of selected replicas.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Display for ExecuteMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

/// One group operation. Offsets are relative to the shared region base and
/// identical on every replica (the symmetric-layout invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupOp {
    /// gWRITE: replicate `data` at `offset` on every replica.
    Write {
        /// Destination offset in the shared region.
        offset: u64,
        /// The bytes to replicate — a pooled, refcounted buffer, so
        /// cloning the op (retry queues, baseline command logs) shares
        /// storage instead of copying it.
        data: Payload,
        /// Interleave a gFLUSH so the write is durable at every hop before
        /// it propagates.
        flush: bool,
    },
    /// gCAS: compare-and-swap the 8-byte word at `offset` on the selected
    /// replicas; the per-replica originals come back in the ack's result map.
    Cas {
        /// Word offset in the shared region (8-byte aligned).
        offset: u64,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
        /// Which replicas execute (others run a no-op leg).
        execute: ExecuteMap,
    },
    /// gMEMCPY: on every replica, copy `len` bytes from `src` to `dst`
    /// locally (log region → database region).
    Memcpy {
        /// Source offset in the shared region.
        src: u64,
        /// Destination offset in the shared region.
        dst: u64,
        /// Bytes to copy.
        len: u64,
        /// Flush the copy to durability on each replica.
        flush: bool,
    },
    /// gFLUSH: push every replica's NIC cache to the durable medium.
    Flush {
        /// A shared-region offset identifying the flush target window.
        offset: u64,
    },
}

impl GroupOp {
    /// Short name for traces and labels.
    pub fn name(&self) -> &'static str {
        match self {
            GroupOp::Write { .. } => "gWRITE",
            GroupOp::Cas { .. } => "gCAS",
            GroupOp::Memcpy { .. } => "gMEMCPY",
            GroupOp::Flush { .. } => "gFLUSH",
        }
    }

    /// Payload bytes this op pushes onto the wire per hop (data only).
    pub fn data_bytes(&self) -> u64 {
        match self {
            GroupOp::Write { data, .. } => data.len() as u64,
            _ => 0,
        }
    }
}

/// A completed group operation, observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAck {
    /// The operation's generation number.
    pub gen: u64,
    /// Per-replica result words (CAS originals; zero for other ops).
    pub result_map: Vec<u64>,
}

impl GroupAck {
    /// For a gCAS: true iff every *executing* replica saw the expected value
    /// (i.e. the swap took effect group-wide).
    pub fn cas_succeeded(&self, compare: u64, execute: ExecuteMap) -> bool {
        self.result_map
            .iter()
            .enumerate()
            .filter(|(i, _)| execute.contains(*i as u32))
            .all(|(_, &orig)| orig == compare)
    }

    /// For a gCAS: the original word observed on one replica (zero for
    /// non-CAS ops or out-of-range positions).
    pub fn cas_observed(&self, replica: u32) -> u64 {
        self.result_map.get(replica as usize).copied().unwrap_or(0)
    }

    /// Replicas (by chain position) whose CAS leg matched `compare`.
    pub fn cas_winners(&self, compare: u64, execute: ExecuteMap) -> ExecuteMap {
        let mut won = ExecuteMap::none();
        for (i, &orig) in self.result_map.iter().enumerate() {
            if execute.contains(i as u32) && orig == compare {
                won = won.with(i as u32);
            }
        }
        won
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_map_basics() {
        let m = ExecuteMap::all(3);
        assert!(m.contains(0) && m.contains(1) && m.contains(2));
        assert!(!m.contains(3));
        let n = ExecuteMap::none().with(1);
        assert!(!n.contains(0) && n.contains(1));
    }

    #[test]
    fn execute_map_set_ops() {
        let m = ExecuteMap::all(3).without(1);
        assert!(m.contains(0) && !m.contains(1) && m.contains(2));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(ExecuteMap::none().is_empty());
        assert_eq!(ExecuteMap::all(64).len(), 64);
    }

    #[test]
    fn execute_map_large_group() {
        let m = ExecuteMap::all(64);
        assert!(m.contains(63));
    }

    #[test]
    fn ack_cas_success_only_counts_executing() {
        let ack = GroupAck {
            gen: 1,
            result_map: vec![0, 999, 0],
        };
        // Replica 1 mismatched but wasn't executing: still a success.
        let exec = ExecuteMap::none().with(0).with(2);
        assert!(ack.cas_succeeded(0, exec));
        assert!(!ack.cas_succeeded(0, ExecuteMap::all(3)));
        assert_eq!(ack.cas_winners(0, ExecuteMap::all(3)).0, 0b101);
    }

    #[test]
    fn op_names_and_sizes() {
        let w = GroupOp::Write {
            offset: 0,
            data: Payload::copy_from(&[0; 128]),
            flush: true,
        };
        assert_eq!(w.name(), "gWRITE");
        assert_eq!(w.data_bytes(), 128);
        assert_eq!(GroupOp::Flush { offset: 0 }.data_bytes(), 0);
    }
}
