//! Group locking over gCAS (paper §5, "Locking and Isolation").
//!
//! One 8-byte word per lock, at the same shared-region offset on every
//! replica. Encoding:
//!
//! * `0` — free;
//! * `WRITER_BIT | owner` — write-locked by `owner` on every replica
//!   (acquired with a group CAS, undone with the execute map on partial
//!   failure, exactly the paper's undo protocol);
//! * `1..WRITER_BIT` — reader count. Read locks are **per replica**: only
//!   the replica being read participates, so all replicas can serve
//!   consistent reads concurrently (the paper's throughput argument).
//!
//! The lock calls are asynchronous like everything on the data path: each
//! returns the generation of the gCAS it issued; feed the matching
//! [`GroupAck`] back to interpret the outcome and learn the follow-up
//! action (retry or undo).

use crate::group::GroupError;
use crate::ops::{ExecuteMap, GroupAck, GroupOp};
use crate::transport::GroupTransport;
use rnicsim::NicCtx;

/// High bit marks a writer; the rest of the word is the owner id.
pub const WRITER_BIT: u64 = 1 << 63;

/// A table of group locks occupying `count` words starting at
/// `region_offset` in the shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockTable {
    region_offset: u64,
    count: u32,
}

/// Outcome of a write-lock attempt, derived from its gCAS ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrLockOutcome {
    /// Every replica swapped: the lock is held group-wide.
    Acquired,
    /// No replica swapped (all busy): retry later. The first holder word is
    /// reported for diagnostics.
    Busy {
        /// The value observed on the first replica.
        holder: u64,
    },
    /// Some replicas swapped and some did not: the caller must issue the
    /// provided undo op (a gCAS scoped to the winners) before retrying.
    Partial {
        /// gCAS that releases the partially acquired replicas.
        undo: GroupOp,
    },
}

/// Outcome of a per-replica read-lock CAS attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdLockOutcome {
    /// The reader count advanced; the read lock is held on that replica.
    Acquired,
    /// A writer holds the lock; retry later.
    WriterHeld {
        /// The writer's word.
        holder: u64,
    },
    /// The count changed concurrently; retry with the reported value.
    Retry {
        /// The value observed (use as the next `compare`).
        observed: u64,
    },
}

impl LockTable {
    /// A table of `count` lock words at `region_offset`.
    ///
    /// # Panics
    ///
    /// Panics if `region_offset` is not 8-byte aligned or `count == 0`.
    pub fn new(region_offset: u64, count: u32) -> Self {
        assert_eq!(region_offset % 8, 0, "lock words must be aligned");
        assert!(count > 0, "empty lock table");
        LockTable {
            region_offset,
            count,
        }
    }

    /// Shared-region offset of lock `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn word_offset(&self, id: u32) -> u64 {
        assert!(id < self.count, "lock id {id} out of range");
        self.region_offset + id as u64 * 8
    }

    /// Number of locks in the table.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Issues a group write-lock acquisition for `id` by `owner`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    ///
    /// # Panics
    ///
    /// Panics if `owner` overflows into [`WRITER_BIT`].
    pub fn wr_lock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        owner: u64,
    ) -> Result<u64, GroupError> {
        assert!(owner & WRITER_BIT == 0, "owner id too large");
        let gs = client.group_size();
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: 0,
                swap: WRITER_BIT | owner,
                execute: ExecuteMap::all(gs),
            },
        )
    }

    /// Interprets a write-lock ack.
    pub fn interpret_wr_lock(&self, ack: &GroupAck, id: u32, owner: u64) -> WrLockOutcome {
        let gs = ack.result_map.len() as u32;
        let winners = ack.cas_winners(0, ExecuteMap::all(gs));
        if winners == ExecuteMap::all(gs) {
            WrLockOutcome::Acquired
        } else if winners == ExecuteMap::none() {
            WrLockOutcome::Busy {
                holder: ack.result_map.first().copied().unwrap_or(0),
            }
        } else {
            WrLockOutcome::Partial {
                undo: GroupOp::Cas {
                    offset: self.word_offset(id),
                    compare: WRITER_BIT | owner,
                    swap: 0,
                    execute: winners,
                },
            }
        }
    }

    /// Issues a group write-lock release.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    pub fn wr_unlock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        owner: u64,
    ) -> Result<u64, GroupError> {
        let gs = client.group_size();
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: WRITER_BIT | owner,
                swap: 0,
                execute: ExecuteMap::all(gs),
            },
        )
    }

    /// Issues a read-lock CAS on one replica: `expected → expected + 1`.
    /// Start with `expected = 0` and follow [`RdLockOutcome::Retry`] values.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn rd_lock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        replica: u32,
        expected: u64,
    ) -> Result<u64, GroupError> {
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: expected,
                swap: expected + 1,
                execute: ExecuteMap::none().with(replica),
            },
        )
    }

    /// Issues a read-lock release on one replica: `expected → expected - 1`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero or a writer word.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn rd_unlock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        replica: u32,
        expected: u64,
    ) -> Result<u64, GroupError> {
        assert!(
            expected > 0 && expected & WRITER_BIT == 0,
            "not reader-held"
        );
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: expected,
                swap: expected - 1,
                execute: ExecuteMap::none().with(replica),
            },
        )
    }

    /// Interprets a read-lock ack for the given replica.
    pub fn interpret_rd_lock(&self, ack: &GroupAck, replica: u32, expected: u64) -> RdLockOutcome {
        let observed = ack.result_map[replica as usize];
        if observed == expected {
            RdLockOutcome::Acquired
        } else if observed & WRITER_BIT != 0 {
            RdLockOutcome::WriterHeld { holder: observed }
        } else {
            RdLockOutcome::Retry { observed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::HyperLoopGroup;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    fn setup() -> (Simulation<FabricSim>, HyperLoopGroup, LockTable) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            3,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        sim.run();
        (sim, group, LockTable::new(1024, 16))
    }

    fn ack_of(sim: &mut Simulation<FabricSim>, group: &mut HyperLoopGroup, gen: u64) -> GroupAck {
        sim.run();
        let acks = drive(sim, |ctx| group.client.poll(ctx));
        acks.into_iter()
            .find(|a| a.gen == gen)
            .expect("ack for gen")
    }

    #[test]
    fn write_lock_acquire_and_release() {
        let (mut sim, mut group, locks) = setup();
        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 77).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        assert_eq!(
            locks.interpret_wr_lock(&ack, 3, 77),
            WrLockOutcome::Acquired
        );

        // A second owner is rejected everywhere (Busy, not Partial).
        let gen2 = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 88).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert_eq!(
            locks.interpret_wr_lock(&ack2, 3, 88),
            WrLockOutcome::Busy {
                holder: WRITER_BIT | 77
            }
        );

        // Release, then 88 can acquire.
        let gen3 = drive(&mut sim, |ctx| {
            locks.wr_unlock(&mut group.client, ctx, 3, 77).unwrap()
        });
        ack_of(&mut sim, &mut group, gen3);
        let gen4 = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 88).unwrap()
        });
        let ack4 = ack_of(&mut sim, &mut group, gen4);
        assert_eq!(
            locks.interpret_wr_lock(&ack4, 3, 88),
            WrLockOutcome::Acquired
        );
    }

    #[test]
    fn partial_acquisition_is_undone() {
        let (mut sim, mut group, locks) = setup();
        // Poison the lock word on replica 1 only (simulating a racing
        // owner): write directly into its memory.
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(5);
        sim.model
            .fab
            .mem(NodeId(2))
            .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
            .unwrap();

        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 5, 42).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        let WrLockOutcome::Partial { undo } = locks.interpret_wr_lock(&ack, 5, 42) else {
            panic!("expected partial outcome, got {ack:?}");
        };
        // Execute the undo: replicas 0 and 2 release.
        let gen2 = drive(&mut sim, |ctx| group.client.issue(ctx, undo).unwrap());
        ack_of(&mut sim, &mut group, gen2);
        for n in [NodeId(1), NodeId(3)] {
            assert_eq!(
                sim.model.fab.mem(n).read_vec(addr, 8).unwrap(),
                0u64.to_le_bytes(),
                "undo must release {n}"
            );
        }
        // Replica 1 still belongs to the racing owner.
        assert_eq!(
            sim.model.fab.mem(NodeId(2)).read_vec(addr, 8).unwrap(),
            (WRITER_BIT | 999).to_le_bytes()
        );
    }

    #[test]
    fn read_locks_count_per_replica() {
        let (mut sim, mut group, locks) = setup();
        // Two readers on replica 1.
        for expected in [0u64, 1] {
            let gen = drive(&mut sim, |ctx| {
                locks
                    .rd_lock(&mut group.client, ctx, 0, 1, expected)
                    .unwrap()
            });
            let ack = ack_of(&mut sim, &mut group, gen);
            assert_eq!(
                locks.interpret_rd_lock(&ack, 1, expected),
                RdLockOutcome::Acquired
            );
        }
        // A writer now sees replica 1 busy -> partial -> undo available.
        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 0, 7).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        assert!(matches!(
            locks.interpret_wr_lock(&ack, 0, 7),
            WrLockOutcome::Partial { .. }
        ));
    }

    #[test]
    fn stale_read_lock_expectation_retries() {
        let (mut sim, mut group, locks) = setup();
        let gen = drive(&mut sim, |ctx| {
            locks.rd_lock(&mut group.client, ctx, 2, 0, 0).unwrap()
        });
        ack_of(&mut sim, &mut group, gen);
        // Second reader wrongly assumes count 0.
        let gen2 = drive(&mut sim, |ctx| {
            locks.rd_lock(&mut group.client, ctx, 2, 0, 0).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert_eq!(
            locks.interpret_rd_lock(&ack2, 0, 0),
            RdLockOutcome::Retry { observed: 1 }
        );
    }

    #[test]
    fn word_offsets_are_distinct_and_aligned() {
        let t = LockTable::new(4096, 8);
        for i in 0..8 {
            assert_eq!(t.word_offset(i) % 8, 0);
        }
        assert_eq!(t.word_offset(1) - t.word_offset(0), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_lock_id_panics() {
        LockTable::new(0, 4).word_offset(4);
    }
}
