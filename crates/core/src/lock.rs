//! Group locking over gCAS (paper §5, "Locking and Isolation").
//!
//! One 8-byte word per lock, at the same shared-region offset on every
//! replica. Encoding:
//!
//! * `0` — free;
//! * `WRITER_BIT | owner` — write-locked by `owner` on every replica
//!   (acquired with a group CAS, undone with the execute map on partial
//!   failure, exactly the paper's undo protocol);
//! * `1..WRITER_BIT` — reader count. Read locks are **per replica**: only
//!   the replica being read participates, so all replicas can serve
//!   consistent reads concurrently (the paper's throughput argument).
//!
//! The lock calls are asynchronous like everything on the data path: each
//! returns the generation of the gCAS it issued; feed the matching
//! [`GroupAck`] back to interpret the outcome and learn the follow-up
//! action (retry or undo).

use crate::group::GroupError;
use crate::ops::{ExecuteMap, GroupAck, GroupOp};
use crate::transport::GroupTransport;
use rnicsim::NicCtx;
use simcore::{SimDuration, SimRng};

/// High bit marks a writer; the rest of the word is the owner id.
pub const WRITER_BIT: u64 = 1 << 63;

/// A table of group locks occupying `count` words starting at
/// `region_offset` in the shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockTable {
    region_offset: u64,
    count: u32,
}

/// Outcome of a write-lock attempt, derived from its gCAS ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrLockOutcome {
    /// Every replica swapped: the lock is held group-wide.
    Acquired,
    /// No replica swapped (all busy): retry later. The first holder word is
    /// reported for diagnostics.
    Busy {
        /// The value observed on the first replica.
        holder: u64,
    },
    /// Some replicas swapped and some did not: the caller must drive the
    /// provided undo (a gCAS scoped to the winners, re-issued until every
    /// winner has observably released) before retrying.
    Partial {
        /// Retrying release of the partially acquired replicas. Drive it
        /// with [`WrUndo::op`] / [`WrUndo::absorb`] until done.
        undo: WrUndo,
    },
}

/// A retrying undo of a partially acquired write lock.
///
/// The one-shot undo gCAS of the original protocol can itself partially
/// fail: if a replica fault (torn word, transient repair) leaves `compare`
/// mismatched on some winner, that winner's lock word stays held by a dead
/// owner forever. `WrUndo` tracks the set of replicas still holding the
/// owner's word and re-issues the release until each one has observably
/// returned to free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrUndo {
    id: u32,
    owner: u64,
    remaining: ExecuteMap,
}

impl WrUndo {
    /// An undo for lock `id` held by `owner` on the `remaining` replicas.
    pub fn new(id: u32, owner: u64, remaining: ExecuteMap) -> Self {
        WrUndo {
            id,
            owner,
            remaining,
        }
    }

    /// Replicas still holding the owner's word.
    pub fn remaining(&self) -> ExecuteMap {
        self.remaining
    }

    /// True once every winner has been released.
    pub fn is_done(&self) -> bool {
        self.remaining.is_empty()
    }

    /// The release gCAS for the replicas still held. Issue it, feed the
    /// matching ack to [`WrUndo::absorb`], and repeat while not done.
    pub fn op(&self, locks: &LockTable) -> GroupOp {
        GroupOp::Cas {
            offset: locks.word_offset(self.id),
            compare: WRITER_BIT | self.owner,
            swap: 0,
            execute: self.remaining,
        }
    }

    /// Issues the current release gCAS.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    pub fn issue<T: GroupTransport>(
        &self,
        locks: &LockTable,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
    ) -> Result<u64, GroupError> {
        client.issue(ctx, self.op(locks))
    }

    /// Absorbs the ack of [`WrUndo::op`]: a replica leaves the remaining
    /// set when its CAS matched (we released it) or it was already free
    /// (released by recovery). Anything else — a faulted or foreign word —
    /// keeps the replica in the set for the next attempt. Returns true
    /// when every winner is released.
    pub fn absorb(&mut self, ack: &GroupAck) -> bool {
        let held = WRITER_BIT | self.owner;
        let mut rest = ExecuteMap::none();
        for (i, &orig) in ack.result_map.iter().enumerate() {
            let i = i as u32;
            if self.remaining.contains(i) && orig != held && orig != 0 {
                rest = rest.with(i);
            }
        }
        self.remaining = rest;
        self.is_done()
    }
}

/// Deterministic seeded backoff for lock retries.
///
/// Retrying a contended lock CAS immediately on every ack phase-locks the
/// contenders: under sustained reader churn each writer attempt observes a
/// fresh (stale-by-arrival) count and can spin forever. Spacing retries by
/// a jittered, exponentially growing delay desynchronizes the contenders
/// so the word is eventually observed free. Fully deterministic for a
/// given seed, so simulations stay replayable.
#[derive(Debug, Clone)]
pub struct LockBackoff {
    rng: SimRng,
    base: SimDuration,
    cap: SimDuration,
    attempt: u32,
    retries: u64,
    delay_ns: u64,
}

impl LockBackoff {
    /// Backoff with the default base (1 µs) and cap (64 µs).
    pub fn new(seed: u64) -> Self {
        Self::with_bounds(
            seed,
            SimDuration::from_micros(1),
            SimDuration::from_micros(64),
        )
    }

    /// Backoff with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    pub fn with_bounds(seed: u64, base: SimDuration, cap: SimDuration) -> Self {
        assert!(!base.is_zero(), "backoff base must be non-zero");
        assert!(cap.as_nanos() >= base.as_nanos(), "backoff cap below base");
        LockBackoff {
            rng: SimRng::new(seed),
            base,
            cap,
            attempt: 0,
            retries: 0,
            delay_ns: 0,
        }
    }

    /// The next delay: full jitter over an exponentially growing window
    /// (`base .. base * 2^attempt`, capped).
    pub fn next_delay(&mut self) -> SimDuration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let window = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << exp)
            .min(self.cap.as_nanos());
        let d = SimDuration::from_nanos(self.rng.gen_range(self.base.as_nanos()..window + 1));
        self.retries += 1;
        self.delay_ns += d.as_nanos();
        d
    }

    /// Resets the attempt counter after a successful acquisition. The
    /// lifetime counters ([`LockBackoff::retries`],
    /// [`LockBackoff::total_delay_ns`]) keep accumulating — they are the
    /// metric trail, not per-round state.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Lifetime count of delays handed out (never reset).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Lifetime sum of handed-out delay nanoseconds (never reset).
    pub fn total_delay_ns(&self) -> u64 {
        self.delay_ns
    }
}

/// Outcome of a per-replica read-lock CAS attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdLockOutcome {
    /// The reader count advanced; the read lock is held on that replica.
    Acquired,
    /// A writer holds the lock; retry later.
    WriterHeld {
        /// The writer's word.
        holder: u64,
    },
    /// The count changed concurrently; retry with the reported value.
    Retry {
        /// The value observed (use as the next `compare`).
        observed: u64,
    },
}

impl LockTable {
    /// A table of `count` lock words at `region_offset`.
    ///
    /// # Panics
    ///
    /// Panics if `region_offset` is not 8-byte aligned or `count == 0`.
    pub fn new(region_offset: u64, count: u32) -> Self {
        assert_eq!(region_offset % 8, 0, "lock words must be aligned");
        assert!(count > 0, "empty lock table");
        LockTable {
            region_offset,
            count,
        }
    }

    /// Shared-region offset of lock `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn word_offset(&self, id: u32) -> u64 {
        assert!(id < self.count, "lock id {id} out of range");
        self.region_offset + id as u64 * 8
    }

    /// Number of locks in the table.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Issues a group write-lock acquisition for `id` by `owner`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    ///
    /// # Panics
    ///
    /// Panics if `owner` overflows into [`WRITER_BIT`].
    pub fn wr_lock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        owner: u64,
    ) -> Result<u64, GroupError> {
        assert!(owner & WRITER_BIT == 0, "owner id too large");
        let gs = client.group_size();
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: 0,
                swap: WRITER_BIT | owner,
                execute: ExecuteMap::all(gs),
            },
        )
    }

    /// Interprets a write-lock ack.
    pub fn interpret_wr_lock(&self, ack: &GroupAck, id: u32, owner: u64) -> WrLockOutcome {
        let gs = ack.result_map.len() as u32;
        let winners = ack.cas_winners(0, ExecuteMap::all(gs));
        if winners == ExecuteMap::all(gs) {
            WrLockOutcome::Acquired
        } else if winners == ExecuteMap::none() {
            WrLockOutcome::Busy {
                holder: ack.result_map.first().copied().unwrap_or(0),
            }
        } else {
            WrLockOutcome::Partial {
                undo: WrUndo::new(id, owner, winners),
            }
        }
    }

    /// Issues a group write-lock release.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    pub fn wr_unlock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        owner: u64,
    ) -> Result<u64, GroupError> {
        let gs = client.group_size();
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: WRITER_BIT | owner,
                swap: 0,
                execute: ExecuteMap::all(gs),
            },
        )
    }

    /// Issues a read-lock CAS on one replica: `expected → expected + 1`.
    /// Start with `expected = 0` and follow [`RdLockOutcome::Retry`] values.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn rd_lock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        replica: u32,
        expected: u64,
    ) -> Result<u64, GroupError> {
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: expected,
                swap: expected + 1,
                execute: ExecuteMap::none().with(replica),
            },
        )
    }

    /// Issues a read-lock release on one replica: `expected → expected - 1`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError`] from the underlying issue.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero or a writer word.
    #[allow(clippy::too_many_arguments)] // verbs-style call: ids + fabric triple
    pub fn rd_unlock<T: GroupTransport>(
        &self,
        client: &mut T,
        ctx: &mut NicCtx<'_>,
        id: u32,
        replica: u32,
        expected: u64,
    ) -> Result<u64, GroupError> {
        assert!(
            expected > 0 && expected & WRITER_BIT == 0,
            "not reader-held"
        );
        client.issue(
            ctx,
            GroupOp::Cas {
                offset: self.word_offset(id),
                compare: expected,
                swap: expected - 1,
                execute: ExecuteMap::none().with(replica),
            },
        )
    }

    /// Interprets a read-lock ack for the given replica.
    pub fn interpret_rd_lock(&self, ack: &GroupAck, replica: u32, expected: u64) -> RdLockOutcome {
        let observed = ack.result_map[replica as usize];
        if observed == expected {
            RdLockOutcome::Acquired
        } else if observed & WRITER_BIT != 0 {
            RdLockOutcome::WriterHeld { holder: observed }
        } else {
            RdLockOutcome::Retry { observed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupConfig;
    use crate::group::HyperLoopGroup;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::NicConfig;
    use simcore::Simulation;

    fn setup() -> (Simulation<FabricSim>, HyperLoopGroup, LockTable) {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            3,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        sim.run();
        (sim, group, LockTable::new(1024, 16))
    }

    fn ack_of(sim: &mut Simulation<FabricSim>, group: &mut HyperLoopGroup, gen: u64) -> GroupAck {
        sim.run();
        let acks = drive(sim, |ctx| group.client.poll(ctx));
        acks.into_iter()
            .find(|a| a.gen == gen)
            .expect("ack for gen")
    }

    #[test]
    fn write_lock_acquire_and_release() {
        let (mut sim, mut group, locks) = setup();
        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 77).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        assert_eq!(
            locks.interpret_wr_lock(&ack, 3, 77),
            WrLockOutcome::Acquired
        );

        // A second owner is rejected everywhere (Busy, not Partial).
        let gen2 = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 88).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert_eq!(
            locks.interpret_wr_lock(&ack2, 3, 88),
            WrLockOutcome::Busy {
                holder: WRITER_BIT | 77
            }
        );

        // Release, then 88 can acquire.
        let gen3 = drive(&mut sim, |ctx| {
            locks.wr_unlock(&mut group.client, ctx, 3, 77).unwrap()
        });
        ack_of(&mut sim, &mut group, gen3);
        let gen4 = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 3, 88).unwrap()
        });
        let ack4 = ack_of(&mut sim, &mut group, gen4);
        assert_eq!(
            locks.interpret_wr_lock(&ack4, 3, 88),
            WrLockOutcome::Acquired
        );
    }

    #[test]
    fn partial_acquisition_is_undone() {
        let (mut sim, mut group, locks) = setup();
        // Poison the lock word on replica 1 only (simulating a racing
        // owner): write directly into its memory.
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(5);
        sim.model
            .fab
            .mem(NodeId(2))
            .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
            .unwrap();

        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 5, 42).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        let WrLockOutcome::Partial { mut undo } = locks.interpret_wr_lock(&ack, 5, 42) else {
            panic!("expected partial outcome, got {ack:?}");
        };
        assert_eq!(undo.remaining().0, 0b101, "replicas 0 and 2 won");
        // Drive the undo: replicas 0 and 2 release in one round here.
        let gen2 = drive(&mut sim, |ctx| {
            undo.issue(&locks, &mut group.client, ctx).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert!(undo.absorb(&ack2), "clean undo completes in one round");
        for n in [NodeId(1), NodeId(3)] {
            assert_eq!(
                sim.model.fab.mem(n).read_vec(addr, 8).unwrap(),
                0u64.to_le_bytes(),
                "undo must release {n}"
            );
        }
        // Replica 1 still belongs to the racing owner.
        assert_eq!(
            sim.model.fab.mem(NodeId(2)).read_vec(addr, 8).unwrap(),
            (WRITER_BIT | 999).to_le_bytes()
        );
    }

    /// Regression for the lock-word leak: when the undo gCAS itself
    /// partially fails (a replica fault mid-undo corrupts a winner's word),
    /// the one-shot undo of the original protocol left that winner held
    /// forever. `WrUndo` must keep re-issuing until every surviving winner
    /// is observably free.
    #[test]
    fn undo_retries_until_every_replica_released() {
        let (mut sim, mut group, locks) = setup();
        let layout = *group.client.layout();
        let addr = layout.shared_base + locks.word_offset(9);
        // Replica 1 is taken by a racing owner so the acquisition is
        // partial (winners: replicas 0 and 2).
        sim.model
            .fab
            .mem(NodeId(2))
            .write_durable(addr, &(WRITER_BIT | 999).to_le_bytes())
            .unwrap();
        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 9, 42).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        let WrLockOutcome::Partial { mut undo } = locks.interpret_wr_lock(&ack, 9, 42) else {
            panic!("expected partial outcome, got {ack:?}");
        };
        // Fault injection mid-undo: winner replica 2's word is torn to a
        // foreign value before the undo gCAS arrives, so its release leg
        // fails while replica 0's succeeds.
        sim.model
            .fab
            .mem(NodeId(3))
            .write_durable(addr, &(WRITER_BIT | 666).to_le_bytes())
            .unwrap();
        let gen2 = drive(&mut sim, |ctx| {
            undo.issue(&locks, &mut group.client, ctx).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert!(!undo.absorb(&ack2), "faulted winner must stay pending");
        assert_eq!(undo.remaining().0, 0b100, "only replica 2 still held");
        // The fault heals: recovery restores the owner's word from the
        // durable medium. The retry loop must now release it.
        sim.model
            .fab
            .mem(NodeId(3))
            .write_durable(addr, &(WRITER_BIT | 42).to_le_bytes())
            .unwrap();
        let gen3 = drive(&mut sim, |ctx| {
            undo.issue(&locks, &mut group.client, ctx).unwrap()
        });
        let ack3 = ack_of(&mut sim, &mut group, gen3);
        assert!(undo.absorb(&ack3), "retry must complete the release");
        for n in [NodeId(1), NodeId(3)] {
            assert_eq!(
                sim.model.fab.mem(n).read_vec(addr, 8).unwrap(),
                0u64.to_le_bytes(),
                "every surviving winner must return to free on {n}"
            );
        }
    }

    /// A winner released out-of-band (word already zero) leaves the undo
    /// set without another CAS round.
    #[test]
    fn undo_absorbs_already_free_words() {
        let mut undo = WrUndo::new(0, 7, ExecuteMap::none().with(0).with(2));
        let ack = GroupAck {
            gen: 1,
            result_map: vec![0, 5, WRITER_BIT | 7],
        };
        assert!(undo.absorb(&ack), "free + matched both count as released");
        assert!(undo.is_done());
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let delays = |seed| {
            let mut b = LockBackoff::new(seed);
            (0..12).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(delays(7), delays(7), "same seed, same schedule");
        assert_ne!(delays(7), delays(8), "different seeds desynchronize");
        let mut b = LockBackoff::new(3);
        let cap = SimDuration::from_micros(64);
        let base = SimDuration::from_micros(1);
        let mut max_seen = SimDuration::ZERO;
        for _ in 0..64 {
            let d = b.next_delay();
            assert!(d.as_nanos() >= base.as_nanos() && d.as_nanos() <= cap.as_nanos());
            max_seen = max_seen.max(d);
        }
        assert!(
            max_seen.as_nanos() > 4 * base.as_nanos(),
            "window must grow beyond the base"
        );
        assert_eq!(b.attempts(), 64);
        b.reset();
        assert_eq!(b.attempts(), 0);
        // The lifetime metric trail survives resets.
        assert_eq!(b.retries(), 64);
        assert!(b.total_delay_ns() >= 64 * base.as_nanos());
        let before = b.total_delay_ns();
        let d = b.next_delay();
        assert_eq!(b.retries(), 65);
        assert_eq!(b.total_delay_ns(), before + d.as_nanos());
    }

    #[test]
    fn read_locks_count_per_replica() {
        let (mut sim, mut group, locks) = setup();
        // Two readers on replica 1.
        for expected in [0u64, 1] {
            let gen = drive(&mut sim, |ctx| {
                locks
                    .rd_lock(&mut group.client, ctx, 0, 1, expected)
                    .unwrap()
            });
            let ack = ack_of(&mut sim, &mut group, gen);
            assert_eq!(
                locks.interpret_rd_lock(&ack, 1, expected),
                RdLockOutcome::Acquired
            );
        }
        // A writer now sees replica 1 busy -> partial -> undo available.
        let gen = drive(&mut sim, |ctx| {
            locks.wr_lock(&mut group.client, ctx, 0, 7).unwrap()
        });
        let ack = ack_of(&mut sim, &mut group, gen);
        assert!(matches!(
            locks.interpret_wr_lock(&ack, 0, 7),
            WrLockOutcome::Partial { .. }
        ));
    }

    #[test]
    fn stale_read_lock_expectation_retries() {
        let (mut sim, mut group, locks) = setup();
        let gen = drive(&mut sim, |ctx| {
            locks.rd_lock(&mut group.client, ctx, 2, 0, 0).unwrap()
        });
        ack_of(&mut sim, &mut group, gen);
        // Second reader wrongly assumes count 0.
        let gen2 = drive(&mut sim, |ctx| {
            locks.rd_lock(&mut group.client, ctx, 2, 0, 0).unwrap()
        });
        let ack2 = ack_of(&mut sim, &mut group, gen2);
        assert_eq!(
            locks.interpret_rd_lock(&ack2, 0, 0),
            RdLockOutcome::Retry { observed: 1 }
        );
    }

    #[test]
    fn word_offsets_are_distinct_and_aligned() {
        let t = LockTable::new(4096, 8);
        for i in 0..8 {
            assert_eq!(t.word_offset(i) % 8, 0);
        }
        assert_eq!(t.word_offset(1) - t.word_offset(0), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_lock_id_panics() {
        LockTable::new(0, 4).word_offset(4);
    }
}
