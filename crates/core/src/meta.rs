//! Building the metadata payload: per-replica work-request images.
//!
//! The client pre-computes, for every replica in the chain, the five
//! descriptor images that replica's NIC will fetch and execute (paper §4.1,
//! *remote work request manipulation*). The payload layout is:
//!
//! ```text
//! [ block_0 | block_1 | ... | block_{n-1} | result_map ]
//! block_i := img0 img1 img2 img3 img4          (5 × 64 B)
//!   img0: loopback primary   — CAS / local memcpy WRITE / NOP
//!   img1: loopback secondary — local flush READ / NOP  (SIGNALED+FENCE)
//!   img2: forward data       — WRITE to next hop / NOP
//!   img3: forward flush      — 0-byte READ to next hop / NOP
//!   img4: forward metadata   — SEND to next hop, or the ack WRITE_IMM to
//!                              the client on the last replica (FENCE)
//! result_map := n × u64, replica i's CAS original lands in word i
//! ```
//!
//! The same bytes travel down the whole chain (each hop's RECV scatters
//! them into its metadata slot); replica `i`'s pre-posted INDIRECT WQEs
//! point at block `i`, so per-replica behaviour (the gCAS execute map, the
//! last hop's ack) is encoded spatially.

use crate::config::SharedLayout;
use crate::ops::GroupOp;
#[cfg(test)]
use rnicsim::WQE_SIZE;
use rnicsim::{wqe_flags, Opcode, Wqe};

/// Bytes of the metadata payload actually transmitted per hop.
pub fn payload_len(layout: &SharedLayout) -> u64 {
    layout.result_map_offset() + layout.result_map_len()
}

/// Builds the five images for replica `idx`.
///
/// `ack_addr` is the client-space address the last replica's WRITE_IMM
/// targets; `gen` becomes the immediate so the client can match the ack.
pub fn build_block(
    op: &GroupOp,
    layout: &SharedLayout,
    idx: u32,
    gen: u64,
    ack_addr: u64,
) -> [Wqe; 5] {
    let base = layout.shared_base;
    let is_last = idx + 1 == layout.group_size;
    let owned = wqe_flags::HW_OWNED;

    let nop = Wqe {
        opcode: Opcode::Nop,
        flags: owned,
        ..Wqe::default()
    };

    // img0: loopback primary operation.
    let img0 = match op {
        GroupOp::Cas {
            offset,
            compare,
            swap,
            execute,
        } if execute.contains(idx) => Wqe {
            opcode: Opcode::CompareSwap,
            flags: owned,
            local_addr: layout.result_word_addr(gen, idx),
            remote_addr: base + offset,
            compare_or_imm: *compare,
            swap: *swap,
            wr_id: gen,
            ..Wqe::default()
        },
        GroupOp::Memcpy { src, dst, len, .. } => Wqe {
            opcode: Opcode::Write,
            flags: owned,
            local_addr: base + src,
            len: *len,
            remote_addr: base + dst,
            wr_id: gen,
            ..Wqe::default()
        },
        _ => nop,
    };

    // img1: loopback secondary — the completion that triggers forwarding.
    // FENCE makes it wait for the CAS response; SIGNALED feeds the WAIT.
    let img1 = match op {
        GroupOp::Memcpy {
            dst, flush: true, ..
        } => Wqe {
            opcode: Opcode::Read,
            flags: owned | wqe_flags::SIGNALED | wqe_flags::FENCE,
            local_addr: base,
            len: 0,
            remote_addr: base + dst,
            wr_id: gen,
            ..Wqe::default()
        },
        _ => Wqe {
            opcode: Opcode::Nop,
            flags: owned | wqe_flags::SIGNALED | wqe_flags::FENCE,
            wr_id: gen,
            ..Wqe::default()
        },
    };

    // img2: forward the data to the next hop (gWRITE only).
    let img2 = match op {
        GroupOp::Write { offset, data, .. } if !is_last => Wqe {
            opcode: Opcode::Write,
            flags: owned,
            local_addr: base + offset,
            len: data.len() as u64,
            remote_addr: base + offset,
            wr_id: gen,
            ..Wqe::default()
        },
        _ => nop,
    };

    // img3: flush the next hop's NIC cache (0-byte READ).
    let wants_forward_flush = match op {
        GroupOp::Write { flush, .. } => *flush,
        GroupOp::Flush { .. } => true,
        _ => false,
    };
    let flush_target = match op {
        GroupOp::Write { offset, .. } | GroupOp::Flush { offset } => *offset,
        _ => 0,
    };
    let img3 = if wants_forward_flush && !is_last {
        Wqe {
            opcode: Opcode::Read,
            flags: owned,
            local_addr: base,
            len: 0,
            remote_addr: base + flush_target,
            wr_id: gen,
            ..Wqe::default()
        }
    } else {
        nop
    };

    // img4: forward the metadata, or ack the client from the last hop.
    let img4 = if is_last {
        Wqe {
            opcode: Opcode::WriteImm,
            flags: owned | wqe_flags::FENCE,
            local_addr: layout.meta_slot(gen) + layout.result_map_offset(),
            len: layout.result_map_len(),
            remote_addr: ack_addr,
            compare_or_imm: gen,
            wr_id: gen,
            ..Wqe::default()
        }
    } else {
        Wqe {
            opcode: Opcode::Send,
            flags: owned | wqe_flags::FENCE,
            local_addr: layout.meta_slot(gen),
            len: payload_len(layout),
            wr_id: gen,
            ..Wqe::default()
        }
    };

    [img0, img1, img2, img3, img4]
}

/// Serializes the whole payload: every replica's block plus a zeroed result
/// map.
pub fn build_payload(op: &GroupOp, layout: &SharedLayout, gen: u64, ack_addr: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    build_payload_into(op, layout, gen, ack_addr, &mut buf);
    buf
}

/// [`build_payload`] into a caller-provided buffer (cleared first), so an
/// issue loop reuses one staging buffer instead of allocating per op.
pub fn build_payload_into(
    op: &GroupOp,
    layout: &SharedLayout,
    gen: u64,
    ack_addr: u64,
    buf: &mut Vec<u8>,
) {
    buf.clear();
    buf.reserve(payload_len(layout) as usize);
    for idx in 0..layout.group_size {
        for img in build_block(op, layout, idx, gen, ack_addr) {
            buf.extend_from_slice(&img.encode());
        }
    }
    buf.resize(payload_len(layout) as usize, 0); // zeroed result map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ExecuteMap;
    use rnicsim::Payload;

    fn layout() -> SharedLayout {
        SharedLayout {
            shared_base: 4096,
            shared_size: 1 << 20,
            meta_base: 2 << 20,
            meta_slot_size: SharedLayout::slot_size_for(3),
            meta_slots: 64,
            group_size: 3,
        }
    }

    #[test]
    fn payload_length_matches_layout() {
        let l = layout();
        let op = GroupOp::Flush { offset: 0 };
        let p = build_payload(&op, &l, 9, 0xA000);
        assert_eq!(p.len() as u64, payload_len(&l));
        assert_eq!(p.len(), 3 * 5 * WQE_SIZE as usize + 3 * 8);
    }

    #[test]
    fn gwrite_blocks_forward_data_except_last() {
        let l = layout();
        let op = GroupOp::Write {
            offset: 256,
            data: Payload::filled(0, 100),
            flush: true,
        };
        for idx in 0..3 {
            let b = build_block(&op, &l, idx, 5, 0xA000);
            if idx < 2 {
                assert_eq!(b[2].opcode, Opcode::Write);
                assert_eq!(b[2].len, 100);
                assert_eq!(b[2].local_addr, b[2].remote_addr, "symmetric layout");
                assert_eq!(b[3].opcode, Opcode::Read);
                assert_eq!(b[3].len, 0, "flush is a 0-byte read");
                assert_eq!(b[4].opcode, Opcode::Send);
                assert!(b[4].is_fenced(), "metadata follows the flush");
            } else {
                assert_eq!(b[2].opcode, Opcode::Nop);
                assert_eq!(b[4].opcode, Opcode::WriteImm);
                assert_eq!(b[4].compare_or_imm, 5, "imm carries the generation");
                assert_eq!(b[4].remote_addr, 0xA000);
            }
        }
    }

    #[test]
    fn gcas_execute_map_turns_non_executors_into_nops() {
        let l = layout();
        let op = GroupOp::Cas {
            offset: 512,
            compare: 1,
            swap: 2,
            execute: ExecuteMap::none().with(0).with(2),
        };
        let b0 = build_block(&op, &l, 0, 7, 0);
        let b1 = build_block(&op, &l, 1, 7, 0);
        let b2 = build_block(&op, &l, 2, 7, 0);
        assert_eq!(b0[0].opcode, Opcode::CompareSwap);
        assert_eq!(b1[0].opcode, Opcode::Nop, "deselected replica runs a NOP");
        assert_eq!(b2[0].opcode, Opcode::CompareSwap);
        // Results land in distinct result-map words.
        assert_ne!(b0[0].local_addr, b2[0].local_addr);
        assert_eq!(b0[0].local_addr, l.result_word_addr(7, 0));
        // The trigger leg is fenced so the CAS result is in memory first.
        assert!(b0[1].is_fenced() && b0[1].is_signaled());
    }

    #[test]
    fn gmemcpy_copies_locally_and_flushes_itself() {
        let l = layout();
        let op = GroupOp::Memcpy {
            src: 100,
            dst: 5000,
            len: 256,
            flush: true,
        };
        let b = build_block(&op, &l, 1, 3, 0);
        assert_eq!(b[0].opcode, Opcode::Write);
        assert_eq!(b[0].local_addr, l.shared_base + 100);
        assert_eq!(b[0].remote_addr, l.shared_base + 5000);
        assert_eq!(b[1].opcode, Opcode::Read, "self-flush via loopback read");
        assert_eq!(
            b[2].opcode,
            Opcode::Nop,
            "no data forwarded: all hops copy locally"
        );
        assert_eq!(b[3].opcode, Opcode::Nop, "no downstream flush needed");
    }

    mod randomized {
        use super::*;
        use crate::ops::ExecuteMap;
        use simcore::SimRng;

        fn layout_for(gs: u32) -> SharedLayout {
            SharedLayout {
                shared_base: 4096,
                shared_size: 1 << 20,
                meta_base: 2 << 20,
                meta_slot_size: SharedLayout::slot_size_for(gs),
                meta_slots: 64,
                group_size: gs,
            }
        }

        fn gen_op(rng: &mut SimRng) -> GroupOp {
            match rng.gen_range(0..4) {
                0 => GroupOp::Write {
                    offset: rng.gen_range(0..1 << 19),
                    data: Payload::filled(1, 1 + rng.gen_index(4095)),
                    flush: rng.gen_bool(0.5),
                },
                1 => GroupOp::Cas {
                    offset: rng.gen_range(0..1 << 16) & !7,
                    compare: rng.next_u64(),
                    swap: rng.next_u64(),
                    execute: ExecuteMap(rng.next_u64()),
                },
                2 => GroupOp::Memcpy {
                    src: rng.gen_range(0..1 << 18),
                    dst: rng.gen_range(0..1 << 18),
                    len: rng.gen_range(1..4096),
                    flush: rng.gen_bool(0.5),
                },
                _ => GroupOp::Flush {
                    offset: rng.gen_range(0..1 << 19),
                },
            }
        }

        #[test]
        fn payload_always_decodes_to_valid_images() {
            let mut rng = SimRng::new(0x4E7A);
            for _ in 0..64 {
                let gs = rng.gen_range(1..8) as u32;
                let gen = rng.next_u64();
                let ack = rng.next_u64();
                let op = gen_op(&mut rng);
                let l = layout_for(gs);
                let payload = build_payload(&op, &l, gen, ack);
                assert_eq!(payload.len() as u64, payload_len(&l));
                // Every 64-byte image in every block decodes.
                for idx in 0..gs {
                    for img in 0..5usize {
                        let start = (idx as usize * 5 + img) * WQE_SIZE as usize;
                        let bytes: [u8; 64] = payload[start..start + 64].try_into().unwrap();
                        assert!(Wqe::decode(&bytes).is_some(), "image {idx}/{img} corrupt");
                    }
                }
                // The result map is zeroed.
                let rm = l.result_map_offset() as usize;
                assert!(payload[rm..].iter().all(|&b| b == 0));
            }
        }

        #[test]
        fn last_block_always_acks_and_others_always_forward() {
            let mut rng = SimRng::new(0xAC4D);
            for _ in 0..64 {
                let gs = rng.gen_range(2..8) as u32;
                let gen = rng.next_u64();
                let op = gen_op(&mut rng);
                let l = layout_for(gs);
                for idx in 0..gs {
                    let b = build_block(&op, &l, idx, gen, 0xACED);
                    if idx + 1 == gs {
                        assert_eq!(b[4].opcode, Opcode::WriteImm);
                        assert_eq!(b[4].compare_or_imm, gen);
                        assert_eq!(b[4].remote_addr, 0xACED);
                        // The last hop never forwards data or flushes.
                        assert_eq!(b[2].opcode, Opcode::Nop);
                        assert_eq!(b[3].opcode, Opcode::Nop);
                    } else {
                        assert_eq!(b[4].opcode, Opcode::Send);
                        assert_eq!(b[4].len, payload_len(&l));
                    }
                    // The trigger leg is always signalled and fenced.
                    assert!(b[1].is_signaled() && b[1].is_fenced());
                }
            }
        }
    }

    #[test]
    fn images_round_trip_through_encoding() {
        let l = layout();
        let op = GroupOp::Write {
            offset: 0,
            data: Payload::filled(1, 8),
            flush: false,
        };
        let payload = build_payload(&op, &l, 11, 0xB000);
        // Decode replica 1's img2 from raw payload bytes.
        let start = (5 + 2) as usize * WQE_SIZE as usize;
        let bytes: [u8; 64] = payload[start..start + 64].try_into().unwrap();
        let img = Wqe::decode(&bytes).unwrap();
        assert_eq!(img.opcode, Opcode::Write);
        assert_eq!(img.len, 8);
    }
}
