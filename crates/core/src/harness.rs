//! A fabric-only simulation harness.
//!
//! HyperLoop's data path involves no replica CPUs, so microbenchmarks and
//! tests can run on the RDMA fabric alone. [`FabricSim`] is a
//! [`Model`] over [`NicEvent`]s that drops host notifications (callers poll
//! explicitly); [`drive`] runs host-side code against the fabric and routes
//! whatever it posted.

use rnicsim::{NicCtx, NicEffect, NicEvent, RdmaFabric};
use simcore::{EventQueue, Model, Outbox, SimTime, Simulation};

/// A simulation whose only actor is the RDMA fabric.
#[derive(Debug)]
pub struct FabricSim {
    /// The fabric under test.
    pub fab: RdmaFabric,
    /// Reused effect buffer: one allocation for the run, not one per event.
    out: Outbox<NicEffect>,
}

impl Model for FabricSim {
    type Event = NicEvent;
    fn handle(&mut self, now: SimTime, ev: NicEvent, q: &mut EventQueue<NicEvent>) {
        let mut out = std::mem::take(&mut self.out);
        self.fab.handle(now, ev, &mut out);
        route(&mut out, q);
        self.out = out;
    }
}

/// Routes fabric effects into the queue, dropping host notifications.
pub fn route(out: &mut Outbox<NicEffect>, q: &mut EventQueue<NicEvent>) {
    for (delay, eff) in out.drain() {
        if let NicEffect::Internal(ev) = eff {
            q.push_after(delay, ev);
        }
    }
}

/// Builds a fabric-only simulation.
pub fn fabric_sim(
    nodes: u32,
    mem_capacity: u64,
    nic: rnicsim::NicConfig,
    fabric: netsim::FabricConfig,
    seed: u64,
) -> Simulation<FabricSim> {
    Simulation::new(FabricSim {
        fab: RdmaFabric::new(nodes, mem_capacity, nic, fabric, seed),
        out: Outbox::new(),
    })
}

/// Runs host-side code against the fabric at the current instant (handing
/// it a bundled [`NicCtx`]), then routes everything it posted into the
/// event queue.
pub fn drive<R>(sim: &mut Simulation<FabricSim>, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
    let now = sim.queue.now();
    let mut out = std::mem::take(&mut sim.model.out);
    let mut ctx = NicCtx::new(&mut sim.model.fab, now, &mut out);
    let r = f(&mut ctx);
    route(&mut out, &mut sim.queue);
    sim.model.out = out;
    r
}
