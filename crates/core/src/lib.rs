//! # hyperloop — group-based NIC offloading for replicated transactions
//!
//! A reproduction of the core contribution of *HyperLoop: Group-Based
//! NIC-Offloading to Accelerate Replicated Transactions in Multi-Tenant
//! Storage Systems* (SIGCOMM 2018), on a simulated RDMA/NVM substrate.
//!
//! The paper's four primitives (Table 1) are provided over a chain of
//! replicas whose CPUs never touch the data path:
//!
//! * **gWRITE** — replicate bytes at the same offset on every replica;
//! * **gCAS** — compare-and-swap a word on selected replicas, with an
//!   execute map and a result map (the building block for group locks);
//! * **gMEMCPY** — every replica copies log bytes into its database region
//!   locally ("remote log processing");
//! * **gFLUSH** — push every replica's volatile NIC cache to durable NVM,
//!   standalone or interleaved with the other primitives.
//!
//! Mechanically, each replica pre-posts chains of `WAIT` +
//! indirect-descriptor WQEs ([`ReplicaHandle::replenish`]); the client
//! rewrites the descriptor images each operation via an ordinary metadata
//! SEND ([`GroupClient::issue`]) and the NICs do the rest (see
//! [`meta`] for the exact image layout, [`group`] for the wiring).
//!
//! Higher layers:
//!
//! * [`lock`] — group write locks and per-replica read locks over gCAS;
//! * [`wal`] — `append` / `execute_and_advance`, the replicated write-ahead
//!   log API the storage case studies build on (paper §5);
//! * [`apps`] — `testbed` adapters: the replica maintenance process and a
//!   generic client driver;
//! * [`reads`] — lock-protected one-sided replica reads (every replica can
//!   serve consistent reads);
//! * [`fanout`] — the §7 extension: primary-coordinated fan-out replication;
//! * [`shard`] — many groups behind one key router ([`ShardSet`]): the
//!   multi-chain scale-out layer the storage case studies shard over;
//! * [`membership`] — heartbeat failure detection and chain repair hooks;
//! * [`migrate`] — live shard migration: epoch-numbered plans over
//!   [`membership::RecoveryStep`] and a driver that moves a running shard
//!   to a new chain without losing acknowledged writes;
//! * [`txn`] — multi-key transactions spanning shards ([`TxnManager`]):
//!   locking (paper §5) and optimistic (validate-then-commit) commit
//!   paths behind one API, audited online by `simaudit`'s txn auditor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod fanout;
pub mod group;
pub mod harness;
pub mod lock;
pub mod membership;
pub mod meta;
pub mod migrate;
pub mod ops;
pub mod reads;
pub mod shard;
pub mod transport;
pub mod txn;
pub mod wal;

pub use config::{GroupConfig, SharedLayout};
pub use group::{GroupClient, GroupError, HyperLoopGroup, ReplicaHandle};
pub use lock::{LockBackoff, LockTable, WrUndo, WRITER_BIT};
pub use migrate::{
    migrate_shard, plan_migration, plan_placement_move, MigrationHost, MigrationOutcome,
    MigrationPlan, MigrationRun,
};
pub use ops::{ExecuteMap, GroupAck, GroupOp};
pub use shard::{
    AckJoin, HashRouter, MigrationStats, RangeRouter, ShardAck, ShardId, ShardRouter, ShardSet,
    DEFAULT_PEN_CAPACITY,
};
pub use transport::GroupTransport;
pub use txn::{CommitMode, Txn, TxnLayout, TxnManager, TxnOutcome, TxnSite, TxnTransports};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, fabric_sim};
    use netsim::{FabricConfig, NodeId};
    use rnicsim::{NicConfig, Payload};
    use simcore::{SimDuration, Simulation};

    const CLIENT: NodeId = NodeId(0);

    fn setup(replicas: u32) -> (Simulation<harness::FabricSim>, HyperLoopGroup, Vec<NodeId>) {
        let mut sim = fabric_sim(
            replicas + 1,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            11,
        );
        let nodes: Vec<NodeId> = (1..=replicas).map(NodeId).collect();
        let group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
        });
        sim.run(); // drain setup-time events
        (sim, group, nodes)
    }

    /// Issues one op and runs the chain to completion, returning the ack.
    fn run_op(
        sim: &mut Simulation<harness::FabricSim>,
        group: &mut HyperLoopGroup,
        op: GroupOp,
    ) -> GroupAck {
        let gen = drive(sim, |ctx| group.client.issue(ctx, op).expect("issue"));
        sim.run();
        let acks = drive(sim, |ctx| group.client.poll(ctx));
        assert_eq!(acks.len(), 1, "expected exactly one ack");
        assert_eq!(acks[0].gen, gen);
        assert_eq!(sim.model.fab.stats().errors, 0, "data path raised errors");
        acks.into_iter().next().expect("one ack")
    }

    #[test]
    fn gwrite_replicates_to_all_and_is_durable() {
        let (mut sim, mut group, nodes) = setup(3);
        let layout = *group.client.layout();
        let data = b"replicate me".to_vec();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 1000,
                data: Payload::copy_from(&data),
                flush: true,
            },
        );
        for &n in &nodes {
            let addr = layout.shared_base + 1000;
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(addr, data.len() as u64)
                    .unwrap(),
                data,
                "replica {n} missing the data"
            );
            assert!(
                sim.model
                    .fab
                    .mem(n)
                    .is_durable(addr, data.len() as u64)
                    .unwrap(),
                "replica {n} data not durable"
            );
        }
        // Client mirror updated too.
        assert_eq!(
            sim.model
                .fab
                .mem(CLIENT)
                .read_vec(group.client.mirror_base() + 1000, data.len() as u64)
                .unwrap(),
            data
        );
    }

    #[test]
    fn gwrite_without_flush_is_volatile_at_replicas() {
        let (mut sim, mut group, nodes) = setup(2);
        let layout = *group.client.layout();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(7, 64),
                flush: false,
            },
        );
        for &n in &nodes {
            assert!(
                !sim.model
                    .fab
                    .mem(n)
                    .is_durable(layout.shared_base, 64)
                    .unwrap(),
                "unflushed write should still be in the NIC cache on {n}"
            );
        }
        // A standalone gFLUSH makes it durable everywhere.
        run_op(&mut sim, &mut group, GroupOp::Flush { offset: 0 });
        for &n in &nodes {
            assert!(sim
                .model
                .fab
                .mem(n)
                .is_durable(layout.shared_base, 64)
                .unwrap());
        }
    }

    #[test]
    fn gwrite_latency_is_microseconds_per_hop() {
        let (mut sim, mut group, _nodes) = setup(3);
        let t0 = sim.now();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(1, 1024),
                flush: true,
            },
        );
        let elapsed = sim.now().since(t0);
        assert!(
            elapsed < SimDuration::from_micros(60),
            "chain of 3 should complete in tens of microseconds: {elapsed}"
        );
        assert!(
            elapsed > SimDuration::from_micros(5),
            "suspiciously fast: {elapsed}"
        );
    }

    #[test]
    fn gcas_swaps_everywhere_and_reports_originals() {
        let (mut sim, mut group, nodes) = setup(3);
        let layout = *group.client.layout();
        // All lock words start at zero; acquire with owner id 42.
        let ack = run_op(
            &mut sim,
            &mut group,
            GroupOp::Cas {
                offset: 512,
                compare: 0,
                swap: 42,
                execute: ExecuteMap::all(3),
            },
        );
        assert_eq!(ack.result_map, vec![0, 0, 0], "all originals were zero");
        assert!(ack.cas_succeeded(0, ExecuteMap::all(3)));
        for &n in &nodes {
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(layout.shared_base + 512, 8)
                    .unwrap(),
                42u64.to_le_bytes()
            );
        }
        // Second acquisition fails and reports the holder.
        let ack2 = run_op(
            &mut sim,
            &mut group,
            GroupOp::Cas {
                offset: 512,
                compare: 0,
                swap: 99,
                execute: ExecuteMap::all(3),
            },
        );
        assert_eq!(ack2.result_map, vec![42, 42, 42]);
        assert!(!ack2.cas_succeeded(0, ExecuteMap::all(3)));
    }

    #[test]
    fn gcas_execute_map_skips_replicas() {
        let (mut sim, mut group, nodes) = setup(3);
        let layout = *group.client.layout();
        let exec = ExecuteMap::none().with(1);
        let ack = run_op(
            &mut sim,
            &mut group,
            GroupOp::Cas {
                offset: 0,
                compare: 0,
                swap: 7,
                execute: exec,
            },
        );
        assert!(ack.cas_succeeded(0, exec));
        let vals: Vec<u64> = nodes
            .iter()
            .map(|&n| {
                u64::from_le_bytes(
                    sim.model
                        .fab
                        .mem(n)
                        .read_vec(layout.shared_base, 8)
                        .unwrap()
                        .try_into()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(vals, vec![0, 7, 0], "only replica 1 executed");
    }

    #[test]
    fn gmemcpy_copies_log_to_db_on_every_replica() {
        let (mut sim, mut group, nodes) = setup(3);
        let layout = *group.client.layout();
        // First replicate some "log" bytes at offset 0.
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 0,
                data: Payload::copy_from(b"logrecord"),
                flush: true,
            },
        );
        // Then ask every NIC to copy them to the "database" at 64 KiB.
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Memcpy {
                src: 0,
                dst: 64 * 1024,
                len: 9,
                flush: true,
            },
        );
        for &n in &nodes {
            let addr = layout.shared_base + 64 * 1024;
            assert_eq!(
                sim.model.fab.mem(n).read_vec(addr, 9).unwrap(),
                b"logrecord",
                "replica {n} did not apply the copy"
            );
            assert!(sim.model.fab.mem(n).is_durable(addr, 9).unwrap());
        }
        // Client mirror matches.
        assert_eq!(
            sim.model
                .fab
                .mem(CLIENT)
                .read_vec(group.client.mirror_base() + 64 * 1024, 9)
                .unwrap(),
            b"logrecord"
        );
    }

    #[test]
    fn pipelined_window_of_ops_completes_in_order() {
        let (mut sim, mut group, nodes) = setup(3);
        let layout = *group.client.layout();
        let n_ops = 16u64;
        let mut issued = Vec::new();
        drive(&mut sim, |ctx| {
            for i in 0..n_ops {
                let gen = group
                    .client
                    .issue(
                        ctx,
                        GroupOp::Write {
                            offset: i * 256,
                            data: Payload::filled(i as u8 + 1, 256),
                            flush: true,
                        },
                    )
                    .expect("window has room");
                issued.push(gen);
            }
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        assert_eq!(acks.len(), n_ops as usize);
        let order: Vec<u64> = acks.iter().map(|a| a.gen).collect();
        assert_eq!(order, issued, "acks in issue order");
        for i in 0..n_ops {
            for &n in &nodes {
                let addr = layout.shared_base + i * 256;
                assert_eq!(
                    sim.model.fab.mem(n).read_vec(addr, 256).unwrap(),
                    vec![i as u8 + 1; 256]
                );
            }
        }
    }

    #[test]
    fn window_full_is_reported() {
        let (mut sim, mut group, _) = setup(2);
        drive(&mut sim, |ctx| {
            for i in 0..16 {
                group
                    .client
                    .issue(
                        ctx,
                        GroupOp::Write {
                            offset: i * 8,
                            data: Payload::filled(1, 8),
                            flush: false,
                        },
                    )
                    .expect("within window");
            }
            let err = group
                .client
                .issue(ctx, GroupOp::Flush { offset: 0 })
                .unwrap_err();
            assert_eq!(err, GroupError::WindowFull);
        });
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut sim, mut group, _) = setup(2);
        drive(&mut sim, |ctx| {
            let size = group.client.layout().shared_size;
            let err = group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: size - 4,
                        data: Payload::filled(0, 8),
                        flush: false,
                    },
                )
                .unwrap_err();
            assert_eq!(err, GroupError::OutOfRange);
        });
    }

    #[test]
    fn replenish_sustains_long_runs() {
        let (mut sim, mut group, _) = setup(2);
        // 400 ops > prepost_depth (128): replenish as a maintenance loop
        // would (here driven directly, CPU-less).
        let total = 400u64;
        let mut done = 0u64;
        while done < total {
            while group.client.can_issue()
                && group.client.completed() + group.client.in_flight() < total
            {
                drive(&mut sim, |ctx| {
                    group
                        .client
                        .issue(
                            ctx,
                            GroupOp::Write {
                                offset: 0,
                                data: Payload::filled(9, 64),
                                flush: true,
                            },
                        )
                        .expect("window checked")
                });
            }
            sim.run();
            let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
            done += acks.len() as u64;
            // Maintenance: keep each replica topped up.
            let completed = group.client.completed();
            drive(&mut sim, |ctx| {
                for r in &mut group.replicas {
                    let target = completed + 128;
                    if target > r.preposted() {
                        let deficit = (target - r.preposted()) as u32;
                        r.replenish(ctx, deficit);
                    }
                }
            });
            sim.run();
        }
        assert_eq!(done, total);
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn single_replica_group_works() {
        let (mut sim, mut group, nodes) = setup(1);
        let layout = *group.client.layout();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 128,
                data: Payload::filled(3, 32),
                flush: true,
            },
        );
        assert!(sim
            .model
            .fab
            .mem(nodes[0])
            .is_durable(layout.shared_base + 128, 32)
            .unwrap());
    }

    #[test]
    fn seven_replica_chain_works() {
        let (mut sim, mut group, nodes) = setup(7);
        let layout = *group.client.layout();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(5, 512),
                flush: true,
            },
        );
        for &n in &nodes {
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(layout.shared_base, 512)
                    .unwrap(),
                vec![5; 512]
            );
        }
    }

    #[test]
    fn unflushed_gwrite_lost_on_power_failure_flushed_survives() {
        let (mut sim, mut group, nodes) = setup(2);
        let layout = *group.client.layout();
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 0,
                data: Payload::filled(1, 32),
                flush: true,
            },
        );
        run_op(
            &mut sim,
            &mut group,
            GroupOp::Write {
                offset: 64,
                data: Payload::filled(2, 32),
                flush: false,
            },
        );
        for &n in &nodes {
            sim.model.fab.mem(n).power_failure();
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(layout.shared_base, 32)
                    .unwrap(),
                vec![1; 32],
                "flushed write must survive on {n}"
            );
            assert_eq!(
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(layout.shared_base + 64, 32)
                    .unwrap(),
                vec![0; 32],
                "unflushed write must be lost on {n}"
            );
        }
    }
}
