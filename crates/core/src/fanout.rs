//! Fan-out replication with the coordination offloaded to the primary's NIC
//! (the paper's §7 extension: FaRM-style primary/backup without the primary
//! CPU polling).
//!
//! One client sends data + metadata to the *primary*; the primary's NIC —
//! not its CPU — fans the write out to every backup, flushes them, counts
//! their completions with a `WAIT`, and acks the client:
//!
//! ```text
//! client ── WRITE+READ+SEND ──► primary NIC
//!   primary loopback SQ : WAIT(recv) → B signalled NOPs   (trigger fan-out)
//!   per-backup SQ_b     : WAIT(loop) → WRITE_b → READ_b   (flush, → fan CQ)
//!   ack SQ              : WAIT(fan, count = B) → WRITE_IMM → client
//! ```
//!
//! The B signalled NOPs multiply one receive completion into B WAIT tokens —
//! a `WAIT` consumes the completions it counts, so B queues cannot share one
//! CQE directly. This is the composition trick that makes multi-way fan-out
//! possible with CORE-Direct semantics.

use crate::config::GroupConfig;
use netsim::NodeId;
use rnicsim::{wqe_flags, CqId, NicCtx, Opcode, QpId, RecvWqe, Wqe, WQE_SIZE};
use std::collections::VecDeque;

/// A fan-out replication group: client → primary NIC → backups.
#[derive(Debug)]
pub struct FanoutGroup {
    /// Client-side issue/poll state.
    pub client: FanoutClient,
    /// Primary-side maintenance handle.
    pub primary: FanoutPrimaryHandle,
}

/// Client state for a fan-out group.
#[derive(Debug)]
pub struct FanoutClient {
    node: NodeId,
    qp_down: QpId,
    cq_ack: CqId,
    qp_ack: QpId,
    shared_base: u64,
    shared_size: u64,
    meta_base_primary: u64,
    meta_slot_size: u64,
    meta_slots: u32,
    window: u32,
    staging_base: u64,
    ack_base: u64,
    mirror_base: u64,
    backups: u32,
    next_gen: u64,
    completed: u64,
    pending: VecDeque<u64>,
}

/// Primary-side pre-post cursors.
#[derive(Debug)]
pub struct FanoutPrimaryHandle {
    node: NodeId,
    qp_up: QpId,
    recv_cq_up: CqId,
    qp_loop_a: QpId,
    cq_loop: CqId,
    backup_qps: Vec<QpId>,
    fan_cq: CqId,
    qp_ack_out: QpId,
    meta_base: u64,
    meta_slot_size: u64,
    meta_slots: u32,
    backups: u32,
    next_prepost: u64,
}

fn meta_payload_len(backups: u32) -> u64 {
    (2 * backups as u64 + 1) * WQE_SIZE
}

impl FanoutGroup {
    /// Wires a fan-out group. All of `primary` and `backups` get symmetric
    /// shared regions; descriptor machinery exists only on the primary.
    ///
    /// # Panics
    ///
    /// Panics on an empty backup set or asymmetric layouts.
    pub fn setup(
        ctx: &mut NicCtx<'_>,
        client_node: NodeId,
        primary_node: NodeId,
        backup_nodes: &[NodeId],
        cfg: GroupConfig,
    ) -> FanoutGroup {
        cfg.validate();
        let backups = backup_nodes.len() as u32;
        assert!(backups >= 1, "need at least one backup");

        // Symmetric shared regions on primary + backups.
        let meta_slot_size = (meta_payload_len(backups) + 63) & !63;
        let mut shared_base = None;
        for &n in std::iter::once(&primary_node).chain(backup_nodes) {
            let sb = ctx.fab.alloc(n, cfg.shared_size);
            match shared_base {
                None => shared_base = Some(sb),
                Some(s) => assert_eq!(s, sb, "node {n} layout asymmetric"),
            }
            ctx.fab.reg_mr(n, sb, cfg.shared_size);
        }
        let shared_base = shared_base.expect("at least primary");
        let meta_base = ctx
            .fab
            .alloc(primary_node, meta_slot_size * cfg.meta_slots as u64);
        ctx.fab.reg_mr(
            primary_node,
            meta_base,
            meta_slot_size * cfg.meta_slots as u64,
        );

        // Client buffers.
        let staging_base = ctx
            .fab
            .alloc(client_node, meta_slot_size * cfg.meta_slots as u64);
        let mirror = ctx.fab.alloc(client_node, cfg.shared_size);
        let ack_base = ctx.fab.alloc(client_node, 64 * cfg.meta_slots as u64);
        ctx.fab
            .reg_mr(client_node, ack_base, 64 * cfg.meta_slots as u64);

        // Client queues.
        let cq_down = ctx.fab.create_cq(client_node);
        let qp_down = ctx.fab.create_qp(client_node, cq_down, cq_down);
        let cq_ack = ctx.fab.create_cq(client_node);
        let qp_ack = ctx.fab.create_qp(client_node, cq_ack, cq_ack);

        // Primary queues.
        let recv_cq_up = ctx.fab.create_cq(primary_node);
        let qp_up = ctx.fab.create_qp(primary_node, recv_cq_up, recv_cq_up);
        let cq_loop = ctx.fab.create_cq(primary_node);
        let qp_loop_a = ctx.fab.create_qp(primary_node, cq_loop, cq_loop);
        let qp_loop_b = ctx.fab.create_qp(primary_node, cq_loop, cq_loop);
        ctx.fab
            .connect(primary_node, qp_loop_a, primary_node, qp_loop_b);
        let fan_cq = ctx.fab.create_cq(primary_node);
        let mut backup_qps = Vec::new();
        for &b in backup_nodes {
            let qp = ctx.fab.create_qp(primary_node, fan_cq, fan_cq);
            let bcq = ctx.fab.create_cq(b);
            let bqp = ctx.fab.create_qp(b, bcq, bcq);
            ctx.fab.connect(primary_node, qp, b, bqp);
            backup_qps.push(qp);
        }
        let ack_out_cq = ctx.fab.create_cq(primary_node);
        let qp_ack_out = ctx.fab.create_qp(primary_node, ack_out_cq, ack_out_cq);

        ctx.fab.connect(client_node, qp_down, primary_node, qp_up);
        ctx.fab
            .connect(primary_node, qp_ack_out, client_node, qp_ack);

        let mut primary = FanoutPrimaryHandle {
            node: primary_node,
            qp_up,
            recv_cq_up,
            qp_loop_a,
            cq_loop,
            backup_qps,
            fan_cq,
            qp_ack_out,
            meta_base,
            meta_slot_size,
            meta_slots: cfg.meta_slots,
            backups,
            next_prepost: 0,
        };
        primary.replenish(ctx, cfg.prepost_depth);
        for _ in 0..cfg.window * 2 {
            ctx.post_recv(
                client_node,
                qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![],
                },
            );
        }

        FanoutGroup {
            client: FanoutClient {
                node: client_node,
                qp_down,
                cq_ack,
                qp_ack,
                shared_base,
                shared_size: cfg.shared_size,
                meta_base_primary: meta_base,
                meta_slot_size,
                meta_slots: cfg.meta_slots,
                window: cfg.window,
                staging_base,
                ack_base,
                mirror_base: 0,
                backups,
                next_gen: 0,
                completed: 0,
                pending: VecDeque::new(),
            },
            primary,
        }
        .with_mirror(mirror)
    }

    fn with_mirror(mut self, mirror: u64) -> Self {
        self.client.mirror_base = mirror;
        self
    }
}

impl FanoutClient {
    /// Ops in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_gen - self.completed
    }

    /// Completed ops.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True if another op fits the window.
    pub fn can_issue(&self) -> bool {
        self.in_flight() < self.window as u64
    }

    /// Issues a replicated write: data to the primary, NIC-fan-out to the
    /// backups, single ack when all backups are durable. Returns the
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if the window is full or the range is out of bounds (this
    /// client is bench-oriented; see `GroupClient` for the checked API).
    pub fn write(&mut self, ctx: &mut NicCtx<'_>, offset: u64, data: &[u8], flush: bool) -> u64 {
        assert!(self.can_issue(), "fan-out window full");
        assert!(
            offset + data.len() as u64 <= self.shared_size,
            "write outside shared region"
        );
        let gen = self.next_gen;
        self.next_gen += 1;
        let slot = gen % self.meta_slots as u64;

        // Build the primary's images: per backup WRITE + flush READ, + ack.
        let mut payload = Vec::with_capacity(meta_payload_len(self.backups) as usize);
        for _b in 0..self.backups {
            let write = Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: self.shared_base + offset,
                len: data.len() as u64,
                remote_addr: self.shared_base + offset,
                wr_id: gen,
                ..Wqe::default()
            };
            payload.extend_from_slice(&write.encode());
            let second = if flush {
                Wqe {
                    opcode: Opcode::Read,
                    flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                    local_addr: self.shared_base,
                    len: 0,
                    remote_addr: self.shared_base + offset,
                    wr_id: gen,
                    ..Wqe::default()
                }
            } else {
                Wqe {
                    opcode: Opcode::Nop,
                    flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED | wqe_flags::FENCE,
                    wr_id: gen,
                    ..Wqe::default()
                }
            };
            payload.extend_from_slice(&second.encode());
        }
        let ack = Wqe {
            opcode: Opcode::WriteImm,
            flags: wqe_flags::HW_OWNED,
            local_addr: self.meta_base_primary, // 0-byte payload
            len: 0,
            remote_addr: self.ack_base + slot * 64,
            compare_or_imm: gen,
            wr_id: gen,
            ..Wqe::default()
        };
        payload.extend_from_slice(&ack.encode());

        let staging = self.staging_base + slot * self.meta_slot_size;
        ctx.fab
            .mem(self.node)
            .write_durable(staging, &payload)
            .expect("staging in bounds");
        ctx.fab
            .mem(self.node)
            .write_durable(self.mirror_base + offset, data)
            .expect("mirror in bounds");

        // Data to the primary, optional flush, then the metadata SEND.
        ctx.post_send(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: self.mirror_base + offset,
                len: data.len() as u64,
                remote_addr: self.shared_base + offset,
                wr_id: gen,
                ..Wqe::default()
            },
        );
        if flush {
            ctx.post_send(
                self.node,
                self.qp_down,
                Wqe {
                    opcode: Opcode::Read,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: self.mirror_base,
                    len: 0,
                    remote_addr: self.shared_base + offset,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
        }
        ctx.post_send(
            self.node,
            self.qp_down,
            Wqe {
                opcode: Opcode::Send,
                flags: if flush {
                    wqe_flags::HW_OWNED | wqe_flags::FENCE
                } else {
                    wqe_flags::HW_OWNED
                },
                local_addr: staging,
                len: meta_payload_len(self.backups),
                wr_id: gen,
                ..Wqe::default()
            },
        );
        self.pending.push_back(gen);
        gen
    }

    /// Collects completed writes, re-posting ack receives.
    pub fn poll(&mut self, ctx: &mut NicCtx<'_>) -> Vec<u64> {
        let cqes = ctx.fab.poll_cq(self.node, self.cq_ack, 64);
        let mut done = Vec::with_capacity(cqes.len());
        for cqe in cqes {
            assert_eq!(cqe.status, rnicsim::CqeStatus::Success, "{cqe:?}");
            let gen = cqe.imm.expect("ack imm");
            debug_assert_eq!(self.pending.pop_front(), Some(gen));
            self.completed += 1;
            ctx.post_recv(
                self.node,
                self.qp_ack,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![],
                },
            );
            done.push(gen);
        }
        done
    }
}

impl FanoutPrimaryHandle {
    /// The primary node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The CQ to bind maintenance to.
    pub fn recv_cq(&self) -> CqId {
        self.recv_cq_up
    }

    /// Pre-posts the next `count` generations of fan-out machinery.
    pub fn replenish(&mut self, ctx: &mut NicCtx<'_>, count: u32) {
        for _ in 0..count {
            let gen = self.next_prepost;
            self.next_prepost += 1;
            let slot_addr = self.meta_base + (gen % self.meta_slots as u64) * self.meta_slot_size;
            ctx.post_recv(
                self.node,
                self.qp_up,
                RecvWqe {
                    wr_id: gen,
                    sges: vec![(slot_addr, meta_payload_len(self.backups) as u32)],
                },
            );
            // Trigger multiplier: one recv completion -> B loop completions.
            ctx.post_send(
                self.node,
                self.qp_loop_a,
                Wqe {
                    opcode: Opcode::Wait,
                    flags: wqe_flags::HW_OWNED,
                    wait_cq: self.recv_cq_up.0,
                    wait_count: 1,
                    enable_count: self.backups,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
            for _ in 0..self.backups {
                ctx.post_send(
                    self.node,
                    self.qp_loop_a,
                    Wqe {
                        opcode: Opcode::Nop,
                        flags: wqe_flags::SIGNALED, // unowned until the WAIT
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
            }
            // Per-backup: WAIT one loop token, then write + flush images.
            for (b, &qp) in self.backup_qps.clone().iter().enumerate() {
                ctx.post_send(
                    self.node,
                    qp,
                    Wqe {
                        opcode: Opcode::Wait,
                        flags: wqe_flags::HW_OWNED,
                        wait_cq: self.cq_loop.0,
                        wait_count: 1,
                        enable_count: 2,
                        wr_id: gen,
                        ..Wqe::default()
                    },
                );
                for img in 0..2u64 {
                    ctx.post_send(
                        self.node,
                        qp,
                        Wqe {
                            opcode: Opcode::Nop,
                            flags: wqe_flags::INDIRECT,
                            local_addr: slot_addr + (2 * b as u64 + img) * WQE_SIZE,
                            wr_id: gen,
                            ..Wqe::default()
                        },
                    );
                }
            }
            // Ack once every backup's flush completed.
            ctx.post_send(
                self.node,
                self.qp_ack_out,
                Wqe {
                    opcode: Opcode::Wait,
                    flags: wqe_flags::HW_OWNED,
                    wait_cq: self.fan_cq.0,
                    wait_count: self.backups,
                    enable_count: 1,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
            ctx.post_send(
                self.node,
                self.qp_ack_out,
                Wqe {
                    opcode: Opcode::Nop,
                    flags: wqe_flags::INDIRECT,
                    local_addr: slot_addr + 2 * self.backups as u64 * WQE_SIZE,
                    wr_id: gen,
                    ..Wqe::default()
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, fabric_sim, FabricSim};
    use netsim::FabricConfig;
    use rnicsim::NicConfig;
    use simcore::{SimDuration, SimTime, Simulation};

    fn setup(backups: u32) -> (Simulation<FabricSim>, FanoutGroup) {
        let mut sim = fabric_sim(
            backups + 2,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            21,
        );
        let backup_nodes: Vec<NodeId> = (2..2 + backups).map(NodeId).collect();
        let group = drive(&mut sim, |ctx| {
            FanoutGroup::setup(
                ctx,
                NodeId(0),
                NodeId(1),
                &backup_nodes,
                GroupConfig::default(),
            )
        });
        sim.run();
        (sim, group)
    }

    #[test]
    fn fanout_write_reaches_primary_and_all_backups_durably() {
        let (mut sim, mut group) = setup(3);
        let base = group.client.shared_base;
        let gen = drive(&mut sim, |ctx| {
            group.client.write(ctx, 500, b"fanout-data", true)
        });
        sim.run();
        let done = drive(&mut sim, |ctx| group.client.poll(ctx));
        assert_eq!(done, vec![gen]);
        assert_eq!(sim.model.fab.stats().errors, 0);
        for n in 1..=4u32 {
            assert_eq!(
                sim.model
                    .fab
                    .mem(NodeId(n))
                    .read_vec(base + 500, 11)
                    .unwrap(),
                b"fanout-data",
                "node {n} missing data"
            );
            assert!(
                sim.model
                    .fab
                    .mem(NodeId(n))
                    .is_durable(base + 500, 11)
                    .unwrap(),
                "node {n} not durable"
            );
        }
    }

    #[test]
    fn fanout_is_not_slower_than_a_long_chain_for_small_writes() {
        // Fan-out pays one hop + parallel writes; a chain pays per-hop
        // serialization. For 3 backups both complete within microseconds.
        let (mut sim, mut group) = setup(3);
        let t0 = sim.now();
        drive(&mut sim, |ctx| group.client.write(ctx, 0, &[1; 128], true));
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));
        let elapsed = sim.now().since(t0);
        assert!(
            elapsed < SimDuration::from_micros(40),
            "fan-out too slow: {elapsed}"
        );
    }

    #[test]
    fn fanout_acks_only_after_every_backup() {
        let (mut sim, mut group) = setup(2);
        let base = group.client.shared_base;
        drive(&mut sim, |ctx| group.client.write(ctx, 64, &[9; 32], true));
        // Run in small steps: the ack must never precede backup durability.
        let mut acked_at = None;
        for step in 0..100_000u64 {
            sim.run_until(SimTime::from_nanos(step * 200));
            let done = drive(&mut sim, |ctx| group.client.poll(ctx));
            if !done.is_empty() {
                acked_at = Some(sim.now());
                break;
            }
        }
        assert!(acked_at.is_some(), "never acked");
        for n in [NodeId(2), NodeId(3)] {
            assert!(
                sim.model.fab.mem(n).is_durable(base + 64, 32).unwrap(),
                "ack arrived before backup {n} was durable"
            );
        }
    }

    #[test]
    fn fanout_pipelines_many_writes() {
        let (mut sim, mut group) = setup(2);
        let mut total = 0;
        for round in 0..10 {
            drive(&mut sim, |ctx| {
                for i in 0..8u64 {
                    group.client.write(ctx, i * 4096, &[round as u8; 512], true);
                }
            });
            sim.run();
            total += drive(&mut sim, |ctx| group.client.poll(ctx)).len();
            drive(&mut sim, |ctx| {
                group.primary.replenish(ctx, 8);
            });
        }
        assert_eq!(total, 80);
        assert_eq!(sim.model.fab.stats().errors, 0);
    }
}
