//! Acceptance tests for the `simprof` critical-path profiler over the full
//! stack: a traced 3-replica durable-gWRITE run must produce a stage
//! attribution whose per-stage means tile the mean end-to-end latency to
//! within 1 ns over the same op set, and same-seed runs must emit
//! byte-identical folded-stack and counter-track artifacts.

use hyperloop::harness::{drive, fabric_sim, FabricSim};
use hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use netsim::{FabricConfig, NodeId};
use rnicsim::{NicConfig, Payload};
use simcore::simprof::{chrome_trace_with_counters, folded_stacks, CounterSampler};
use simcore::{MetricsRegistry, Simulation, StageAttribution, Tracer};

const CLIENT: NodeId = NodeId(0);

fn traced_setup(seed: u64) -> (Simulation<FabricSim>, HyperLoopGroup, Tracer) {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        seed,
    );
    let tracer = Tracer::enabled(1 << 16);
    sim.model.fab.set_tracer(tracer.clone());
    let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
    });
    group.client.set_tracer(tracer.clone());
    sim.run();
    tracer.clear(); // drop setup-time noise; profile the ops alone
    (sim, group, tracer)
}

fn run_gwrite(sim: &mut Simulation<FabricSim>, group: &mut HyperLoopGroup, payload: usize) {
    let gen = drive(sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 0,
                    data: Payload::filled(0xCD, payload),
                    flush: true,
                },
            )
            .expect("issue")
    });
    sim.run();
    let acks = drive(sim, |ctx| group.client.poll(ctx));
    assert_eq!(acks.len(), 1);
    assert_eq!(acks[0].gen, gen);
}

/// FNV-1a — summarizes byte equality in assert messages.
fn fnv(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[test]
fn stage_means_tile_mean_e2e_within_1ns() {
    let (mut sim, mut group, tracer) = traced_setup(0x51A6E);
    const OPS: usize = 16;
    for _ in 0..OPS {
        run_gwrite(&mut sim, &mut group, 512);
    }
    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0);
    assert_eq!(tracer.dropped_ops(), 0);

    let att = StageAttribution::from_events(&events);
    // Every issued op folds; background maintenance (descriptor
    // replenishment) may add traced ops of its own, and RECVs preposted
    // for generations never issued are counted truncated, not folded.
    assert!(att.ops >= OPS as u64, "ops folded: {}", att.ops);

    // The tiling invariant the whole design hangs on: per-op stages
    // partition [issue, ack], so the sum of per-stage mean contributions
    // IS the mean end-to-end latency — within 1 ns over the same op set.
    let diff = (att.mean_e2e_ns() - att.stage_mean_sum_ns()).abs();
    assert!(
        diff <= 1.0,
        "stage means do not tile e2e: mean={} sum={} diff={diff}",
        att.mean_e2e_ns(),
        att.stage_mean_sum_ns()
    );

    // Exact integer form of the same identity: total stage ns == total e2e ns.
    let stage_total: u64 = att.stages.values().map(|s| s.total_ns).sum();
    assert_eq!(stage_total, att.e2e_total_ns);

    // The pipeline stages the paper describes all carry weight.
    for needle in ["meta_send", "wait_release", "dma", "gflush", "op_ack"] {
        let agg = att
            .stages
            .get(needle)
            .unwrap_or_else(|| panic!("missing stage {needle:?} in {:?}", att.stages.keys()));
        // Some stages (e.g. meta_send at the issue tick) are zero-width
        // points; only the count is guaranteed, the tiling sum covers time.
        assert!(agg.count >= OPS as u64, "{needle} under-counted");
    }

    // The issued gWRITEs all take the same deterministic path, so the
    // dominant path covers (nearly) the whole set — anything left over is
    // background maintenance.
    let (sig, share) = att.dominant_path().expect("dominant path");
    assert!(share >= 0.5, "dominant share {share}");
    assert!(sig.contains("wait_release"), "dominant path {sig:?}");
}

/// One full profiled run: traced ops plus counter samples, rendered to the
/// two deterministic artifacts (folded stacks, counter-track Chrome JSON).
fn profiled_run(seed: u64) -> (String, String) {
    let (mut sim, mut group, tracer) = traced_setup(seed);
    let mut sampler = CounterSampler::with_prefixes(&["fab."]);
    for i in 0..8 {
        run_gwrite(&mut sim, &mut group, 512 + i * 128);
        let mut reg = MetricsRegistry::new();
        sim.model.fab.export_into(&mut reg, "fab");
        sampler.sample(sim.now(), &reg);
    }
    let events = tracer.events();
    (
        folded_stacks(&events, "gwrite"),
        chrome_trace_with_counters(&events, sampler.samples()),
    )
}

#[test]
fn same_seed_folded_stacks_and_counter_tracks_are_byte_identical() {
    let (fold_a, trace_a) = profiled_run(0xFEED);
    let (fold_b, trace_b) = profiled_run(0xFEED);
    assert!(!fold_a.is_empty());
    assert!(trace_a.contains("\"ph\":\"C\""), "counter events present");
    assert_eq!(fnv(&fold_a), fnv(&fold_b), "folded stacks diverged");
    assert_eq!(fold_a, fold_b);
    assert_eq!(fnv(&trace_a), fnv(&trace_b), "counter traces diverged");
    assert_eq!(trace_a, trace_b);

    // Folded output is sorted, one "stack count" pair per line, and roots
    // at the label we passed.
    for line in fold_a.lines() {
        assert!(line.starts_with("gwrite;"), "bad root in {line:?}");
        let (stack, count) = line.rsplit_once(' ').expect("stack<space>value");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("numeric leaf value");
    }
    let mut sorted: Vec<&str> = fold_a.lines().collect();
    sorted.sort_unstable();
    assert_eq!(sorted, fold_a.lines().collect::<Vec<_>>());
}
