//! End-to-end tracing tests over the full stack: a traced 3-replica durable
//! gWRITE must reconstruct into a per-stage breakdown whose stages exactly
//! tile the end-to-end latency, and same-seed traced runs must produce
//! byte-identical Chrome trace JSON.

use hyperloop::harness::{drive, fabric_sim, FabricSim};
use hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use netsim::{FabricConfig, NodeId};
use rnicsim::{NicConfig, Payload};
use simcore::simtrace::{chrome_trace_json, op_breakdown, ops, span_tree};
use simcore::{SimDuration, SimTime, Simulation, Tracer};

const CLIENT: NodeId = NodeId(0);

/// Builds a traced 3-replica group and returns the sim, group and tracer.
fn traced_setup(seed: u64) -> (Simulation<FabricSim>, HyperLoopGroup, Tracer) {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        seed,
    );
    let tracer = Tracer::enabled(1 << 16);
    sim.model.fab.set_tracer(tracer.clone());
    let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
    });
    group.client.set_tracer(tracer.clone());
    sim.run();
    tracer.clear(); // drop setup-time noise; measure the op alone
    (sim, group, tracer)
}

/// Issues one durable gWRITE and returns (gen, issue time, ack time).
fn run_traced_gwrite(
    sim: &mut Simulation<FabricSim>,
    group: &mut HyperLoopGroup,
    payload: usize,
) -> (u64, SimTime, SimTime) {
    let t_issue = sim.now();
    let gen = drive(sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 0,
                    data: Payload::filled(0xAB, payload),
                    flush: true,
                },
            )
            .expect("issue")
    });
    sim.run();
    let acks = drive(sim, |ctx| group.client.poll(ctx));
    assert_eq!(acks.len(), 1);
    assert_eq!(acks[0].gen, gen);
    assert_eq!(sim.model.fab.stats().errors, 0);
    (gen, t_issue, sim.now())
}

#[test]
fn gwrite_breakdown_stages_tile_end_to_end_latency() {
    let (mut sim, mut group, tracer) = traced_setup(11);
    let (gen, t_issue, t_ack) = run_traced_gwrite(&mut sim, &mut group, 1024);

    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0, "ring must not overflow in this test");
    assert!(ops(&events).contains(&gen));

    let bd = op_breakdown(&events, gen).expect("breakdown for the op");
    // The trace brackets exactly the interval the host observed.
    assert_eq!(bd.start, t_issue, "first event is the issue");
    assert_eq!(bd.end, t_ack, "last event is the ack");
    // Stages partition [start, end]: their sum IS the end-to-end latency.
    let sum: SimDuration = bd
        .stages
        .iter()
        .fold(SimDuration::ZERO, |acc, s| acc + s.duration());
    assert_eq!(sum, bd.total());
    assert_eq!(sum, t_ack.since(t_issue));

    // The paper's pipeline is visible: metadata SEND, per-replica WAIT
    // release, DMA, gFLUSH, final ACK.
    for needle in ["meta_send", "wait_release", "dma", "gflush", "op_ack"] {
        assert!(
            bd.stages.iter().any(|s| s.label.starts_with(needle)),
            "missing stage {needle} in {:?}",
            bd.stages
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>()
        );
    }
    // All three replicas released a WAIT.
    for node in 1..=3u32 {
        assert!(
            bd.stages
                .iter()
                .any(|s| s.label == format!("wait_release@n{node}")),
            "replica {node} missing WAIT release"
        );
    }

    // The span tree groups stages by node under the op root.
    let tree = span_tree(&events, gen).expect("span tree");
    assert_eq!(tree.start, t_issue);
    assert_eq!(tree.end, t_ack);
    assert!(!tree.children.is_empty());

    // And the whole thing exports as Chrome trace JSON.
    let json = chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("meta_send"));
    assert!(json.contains("gflush"));
}

/// One fully-traced run: a handful of pipelined durable gWRITEs.
fn traced_run(seed: u64) -> String {
    let (mut sim, mut group, tracer) = traced_setup(seed);
    for _ in 0..5 {
        run_traced_gwrite(&mut sim, &mut group, 512);
    }
    chrome_trace_json(&tracer.events())
}

#[test]
fn same_seed_runs_trace_byte_identically() {
    let a = traced_run(0xD5EED);
    let b = traced_run(0xD5EED);
    assert!(!a.is_empty());
    // Byte-identical, not merely equivalent: compare content hashes too so a
    // failure message stays small.
    let hash = |s: &str| -> u64 {
        // FNV-1a, enough to summarize equality in the assert message.
        s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    };
    assert_eq!(hash(&a), hash(&b), "same-seed traces diverged");
    assert_eq!(a, b);
}

#[test]
fn disabled_tracer_records_nothing() {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        7,
    );
    let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
    });
    sim.run();
    run_traced_gwrite(&mut sim, &mut group, 256);
    let t = Tracer::disabled();
    assert!(!t.is_enabled());
    assert!(t.events().is_empty());
}
