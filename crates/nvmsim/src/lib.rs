//! # nvmsim — simulated non-volatile memory with an explicit durability boundary
//!
//! HyperLoop (SIGCOMM 2018) targets storage servers whose medium is
//! battery-backed DRAM / NVM reached by RDMA. The subtle part of that stack
//! is not persistence itself but the *durability boundary*: an RDMA WRITE is
//! ACKed as soon as the payload reaches the destination NIC's **volatile**
//! cache, so acknowledged data can still be lost on power failure unless an
//! explicit flush (HyperLoop's `gFLUSH`, a 0-byte RDMA READ) pushes it to the
//! durable medium.
//!
//! This crate models exactly that boundary:
//!
//! * [`NvmDevice`] — a byte-addressable device where writes land in a
//!   volatile layer and only `flush_*` commits them.
//! * [`overlay::DirtyOverlay`] — the underlying dirty-extent tracker.
//! * [`NvmDevice::power_failure`] — drops all volatile bytes, letting tests
//!   and experiments *observe* the data loss the paper reasons about.
//!
//! The paper emulated NVM with tmpfs on DRAM and could only argue about
//! durability; the simulation makes it checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod overlay;

pub use device::{AccessOutOfBoundsError, NvmDevice, NvmStats};
