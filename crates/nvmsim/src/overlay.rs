//! Tracking of bytes that have been written but not yet flushed to the
//! durable medium.
//!
//! The overlay is a set of disjoint, non-adjacent dirty extents keyed by
//! offset. Writes merge into existing extents; flushes commit and remove
//! (possibly splitting) extents. Reads see overlay bytes over durable bytes,
//! matching a write-back cache that is coherent for reads.
//!
//! Extents live in a sorted vector, not a `BTreeMap`: a data-path overlay
//! holds at most a handful of extents (one per unflushed write), and the
//! vector keeps its capacity across the empty state a write/flush cycle
//! passes through every operation — a map would free and reallocate its
//! root node on every cycle.

/// Extent buffers larger than this are not recycled (a one-off bulk write
/// should not pin its allocation in the overlay).
const MAX_SPARE_CAPACITY: usize = 64 << 10;
/// Maximum recycled extent buffers retained per overlay.
const MAX_SPARE_BUFFERS: usize = 32;

/// Disjoint dirty byte ranges awaiting a flush.
///
/// Steady-state write/flush cycles recycle extent buffers through an
/// internal free-list, so a NIC-side write-back cache that is written and
/// flushed once per operation performs no net allocations once warm.
#[derive(Debug, Default)]
pub struct DirtyOverlay {
    /// `(start, bytes)` extents, sorted by start, pairwise disjoint.
    extents: Vec<(u64, Vec<u8>)>,
    /// Recycled extent buffers (cleared before reuse).
    spare: Vec<Vec<u8>>,
}

impl Clone for DirtyOverlay {
    fn clone(&self) -> Self {
        DirtyOverlay {
            extents: self.extents.clone(),
            spare: Vec::new(),
        }
    }
}

impl PartialEq for DirtyOverlay {
    fn eq(&self, other: &Self) -> bool {
        // Scratch state is not part of the overlay's value.
        self.extents == other.extents
    }
}
impl Eq for DirtyOverlay {}

impl DirtyOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        DirtyOverlay::default()
    }

    /// Takes a cleared buffer from the free-list, or allocates one.
    fn grab(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }

    /// Returns an extent buffer's storage to the free-list.
    fn recycle(&mut self, mut v: Vec<u8>) {
        if v.capacity() > MAX_SPARE_CAPACITY || self.spare.len() >= MAX_SPARE_BUFFERS {
            return;
        }
        v.clear();
        self.spare.push(v);
    }

    /// True if no dirty bytes are pending.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Total number of dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.extents.iter().map(|(_, v)| v.len() as u64).sum()
    }

    /// Number of distinct dirty extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Records a write of `data` at `offset`, merging with any overlapping
    /// or adjacent extents.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut start = offset;
        let mut bytes = self.grab();
        bytes.extend_from_slice(data);

        // Index of the first extent starting after `offset`.
        let idx = self.extents.partition_point(|(s, _)| *s <= offset);
        let mut insert_at = idx;

        // Absorb the predecessor if it overlaps or touches us.
        if idx > 0 {
            let (pstart, plen) = {
                let p = &self.extents[idx - 1];
                (p.0, p.1.len() as u64)
            };
            if pstart + plen >= start {
                let (pstart, pdata) = self.extents.remove(idx - 1);
                let mut merged = pdata;
                let overlap_from = (start - pstart) as usize;
                if merged.len() < overlap_from + bytes.len() {
                    merged.resize(overlap_from + bytes.len(), 0);
                }
                merged[overlap_from..overlap_from + bytes.len()].copy_from_slice(&bytes);
                start = pstart;
                self.recycle(bytes);
                bytes = merged;
                insert_at = idx - 1;
            }
        }

        // Absorb successors swallowed by or touching the new extent. Only
        // the last absorbed follower can stretch past `end`, so comparing
        // against the pre-absorption `end` matches the merge semantics.
        let end = start + bytes.len() as u64;
        while insert_at < self.extents.len() && self.extents[insert_at].0 <= end {
            let (fstart, fdata) = self.extents.remove(insert_at);
            let fend = fstart + fdata.len() as u64;
            if fend > end {
                // Keep the follower's suffix beyond our write.
                let keep_from = (end - fstart) as usize;
                bytes.extend_from_slice(&fdata[keep_from..]);
            }
            self.recycle(fdata);
        }

        self.extents.insert(insert_at, (start, bytes));
    }

    /// Copies overlay bytes intersecting `[offset, offset + buf.len())` onto
    /// `buf`, which the caller has pre-filled with durable content.
    pub fn apply_to(&self, offset: u64, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let end = offset + buf.len() as u64;
        // The predecessor extent may stretch into our window.
        let from = self
            .extents
            .partition_point(|(s, _)| *s <= offset)
            .saturating_sub(1);
        for (estart, edata) in &self.extents[from..] {
            let estart = *estart;
            if estart >= end {
                break;
            }
            let eend = estart + edata.len() as u64;
            if eend <= offset {
                continue;
            }
            let copy_start = estart.max(offset);
            let copy_end = eend.min(end);
            let src = &edata[(copy_start - estart) as usize..(copy_end - estart) as usize];
            buf[(copy_start - offset) as usize..(copy_end - offset) as usize].copy_from_slice(src);
        }
    }

    /// Removes the dirty bytes inside `[offset, offset+len)`, splitting
    /// extents that straddle the boundary, and hands each taken
    /// `(offset, bytes)` run to `f`. The visitor form is the flush
    /// fastpath: extent buffers go back to the free-list instead of being
    /// moved out, so a write/flush cycle allocates nothing once warm.
    pub fn take_range_with(&mut self, offset: u64, len: u64, mut f: impl FnMut(u64, &[u8])) {
        if len == 0 {
            return;
        }
        let end = offset + len;
        // The predecessor extent may stretch into the flush window.
        let mut i = self
            .extents
            .partition_point(|(s, _)| *s <= offset)
            .saturating_sub(1);
        while i < self.extents.len() {
            let (estart, elen) = {
                let e = &self.extents[i];
                (e.0, e.1.len() as u64)
            };
            if estart >= end {
                break;
            }
            if estart + elen <= offset {
                i += 1;
                continue;
            }
            let (estart, edata) = self.extents.remove(i);
            let eend = estart + edata.len() as u64;
            // Prefix outside the flush window stays dirty.
            if estart < offset {
                let mut keep = self.grab();
                keep.extend_from_slice(&edata[..(offset - estart) as usize]);
                self.extents.insert(i, (estart, keep));
                i += 1;
            }
            // Suffix outside the flush window stays dirty.
            if eend > end {
                let mut keep = self.grab();
                keep.extend_from_slice(&edata[(end - estart) as usize..]);
                self.extents.insert(i, (end, keep));
                i += 1;
            }
            let tstart = estart.max(offset);
            let tend = eend.min(end);
            f(
                tstart,
                &edata[(tstart - estart) as usize..(tend - estart) as usize],
            );
            self.recycle(edata);
        }
    }

    /// Removes and returns the dirty bytes inside `[offset, offset+len)` as
    /// owned pairs (see [`DirtyOverlay::take_range_with`] for the
    /// allocation-free form).
    pub fn take_range(&mut self, offset: u64, len: u64) -> Vec<(u64, Vec<u8>)> {
        let mut taken = Vec::new();
        self.take_range_with(offset, len, |o, bytes| taken.push((o, bytes.to_vec())));
        taken
    }

    /// Removes every dirty extent, handing each to `f` and recycling its
    /// storage.
    pub fn take_all_with(&mut self, mut f: impl FnMut(u64, &[u8])) {
        while !self.extents.is_empty() {
            let (o, bytes) = self.extents.remove(0);
            f(o, &bytes);
            self.recycle(bytes);
        }
    }

    /// Removes and returns every dirty extent.
    pub fn take_all(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut all = Vec::new();
        self.take_all_with(|o, bytes| all.push((o, bytes.to_vec())));
        all
    }

    /// Discards all dirty bytes (a power failure).
    pub fn clear(&mut self) {
        self.extents.clear();
    }

    /// True if no byte in `[offset, offset+len)` is dirty.
    pub fn is_clean_range(&self, offset: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = offset + len;
        let from = self
            .extents
            .partition_point(|(s, _)| *s <= offset)
            .saturating_sub(1);
        !self.extents[from..]
            .iter()
            .any(|(s, d)| *s < end && *s + d.len() as u64 > offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(ov: &DirtyOverlay, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0; len];
        ov.apply_to(offset, &mut buf);
        buf
    }

    #[test]
    fn disjoint_writes_stay_separate() {
        let mut ov = DirtyOverlay::new();
        ov.write(0, &[1, 1]);
        ov.write(10, &[2, 2]);
        assert_eq!(ov.extent_count(), 2);
        assert_eq!(ov.dirty_bytes(), 4);
    }

    #[test]
    fn adjacent_writes_merge() {
        let mut ov = DirtyOverlay::new();
        ov.write(0, &[1, 1]);
        ov.write(2, &[2, 2]);
        assert_eq!(ov.extent_count(), 1);
        assert_eq!(read(&ov, 0, 4), vec![1, 1, 2, 2]);
    }

    #[test]
    fn overlapping_write_wins() {
        let mut ov = DirtyOverlay::new();
        ov.write(0, &[1, 1, 1, 1]);
        ov.write(1, &[9, 9]);
        assert_eq!(ov.extent_count(), 1);
        assert_eq!(read(&ov, 0, 4), vec![1, 9, 9, 1]);
    }

    #[test]
    fn write_swallowing_followers() {
        let mut ov = DirtyOverlay::new();
        ov.write(2, &[1]);
        ov.write(4, &[2]);
        ov.write(8, &[3, 3]);
        ov.write(0, &[7; 9]); // covers extents at 2 and 4, touches 8
        assert_eq!(ov.extent_count(), 1);
        assert_eq!(read(&ov, 0, 10), vec![7, 7, 7, 7, 7, 7, 7, 7, 7, 3]);
    }

    #[test]
    fn apply_respects_window() {
        let mut ov = DirtyOverlay::new();
        ov.write(5, &[1, 2, 3, 4]);
        // Window [6, 8) sees only the middle two bytes.
        assert_eq!(read(&ov, 6, 2), vec![2, 3]);
    }

    #[test]
    fn take_range_splits_straddlers() {
        let mut ov = DirtyOverlay::new();
        ov.write(0, &[1, 2, 3, 4, 5, 6]);
        let taken = ov.take_range(2, 2);
        assert_eq!(taken, vec![(2, vec![3, 4])]);
        assert_eq!(ov.extent_count(), 2);
        assert_eq!(read(&ov, 0, 6), vec![1, 2, 0, 0, 5, 6]);
        assert!(ov.is_clean_range(2, 2));
        assert!(!ov.is_clean_range(0, 2));
    }

    #[test]
    fn take_all_empties() {
        let mut ov = DirtyOverlay::new();
        ov.write(3, &[1]);
        ov.write(30, &[2]);
        let all = ov.take_all();
        assert_eq!(all.len(), 2);
        assert!(ov.is_empty());
    }

    #[test]
    fn clear_discards() {
        let mut ov = DirtyOverlay::new();
        ov.write(0, &[1; 16]);
        ov.clear();
        assert!(ov.is_empty());
        assert_eq!(read(&ov, 0, 16), vec![0; 16]);
    }

    #[test]
    fn clean_range_checks() {
        let mut ov = DirtyOverlay::new();
        assert!(ov.is_clean_range(0, 100));
        ov.write(10, &[1, 2]);
        assert!(ov.is_clean_range(0, 10));
        assert!(!ov.is_clean_range(0, 11));
        assert!(!ov.is_clean_range(11, 5));
        assert!(ov.is_clean_range(12, 5));
        assert!(ov.is_clean_range(5, 0), "empty range is always clean");
    }

    #[test]
    fn zero_length_write_is_noop() {
        let mut ov = DirtyOverlay::new();
        ov.write(5, &[]);
        assert!(ov.is_empty());
    }
}

#[cfg(test)]
mod randomized {
    use super::*;

    /// Minimal deterministic PRNG (splitmix64): this crate has no
    /// dependencies, so the tests carry their own generator.
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next() % (hi - lo)
        }
        fn bytes(&mut self, len: usize) -> Vec<u8> {
            (0..len).map(|_| self.next() as u8).collect()
        }
    }

    /// A naive shadow model: a map from byte offset to value.
    #[derive(Default)]
    struct Shadow {
        bytes: std::collections::HashMap<u64, u8>,
    }

    impl Shadow {
        fn write(&mut self, offset: u64, data: &[u8]) {
            for (i, &b) in data.iter().enumerate() {
                self.bytes.insert(offset + i as u64, b);
            }
        }
        fn read(&self, offset: u64, len: usize) -> Vec<u8> {
            (0..len)
                .map(|i| *self.bytes.get(&(offset + i as u64)).unwrap_or(&0))
                .collect()
        }
        fn remove_range(&mut self, offset: u64, len: u64) {
            for o in offset..offset + len {
                self.bytes.remove(&o);
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Write(u64, Vec<u8>),
        Flush(u64, u64),
    }

    fn gen_ops(seed: u64) -> Vec<Op> {
        let mut rng = TestRng(seed);
        let n = 1 + (rng.next() as usize % 59);
        (0..n)
            .map(|_| {
                if rng.next().is_multiple_of(2) {
                    let len = rng.range(1, 32) as usize;
                    Op::Write(rng.range(0, 256), rng.bytes(len))
                } else {
                    Op::Flush(rng.range(0, 256), rng.range(1, 64))
                }
            })
            .collect()
    }

    #[test]
    fn overlay_matches_shadow_model() {
        for case in 0..64u64 {
            let mut ov = DirtyOverlay::new();
            let mut shadow = Shadow::default();
            for op in &gen_ops(0x0E71A + case) {
                match op {
                    Op::Write(o, d) => {
                        ov.write(*o, d);
                        shadow.write(*o, d);
                    }
                    Op::Flush(o, l) => {
                        let taken = ov.take_range(*o, *l);
                        // Flushed bytes must equal the shadow's bytes there.
                        for (toff, tdata) in &taken {
                            assert_eq!(&shadow.read(*toff, tdata.len()), tdata);
                        }
                        shadow.remove_range(*o, *l);
                    }
                }
                // Read-back equivalence over the whole touched space.
                let mut buf = vec![0; 320];
                ov.apply_to(0, &mut buf);
                assert_eq!(buf, shadow.read(0, 320));
                assert_eq!(ov.dirty_bytes() as usize, shadow.bytes.len());
            }
        }
    }

    #[test]
    fn extents_stay_disjoint_and_nonempty() {
        for case in 0..64u64 {
            let mut ov = DirtyOverlay::new();
            for op in &gen_ops(0xD15C0 + case) {
                match op {
                    Op::Write(o, d) => ov.write(*o, d),
                    Op::Flush(o, l) => {
                        ov.take_range(*o, *l);
                    }
                }
                let mut last_end: Option<u64> = None;
                for (s, d) in &ov.extents {
                    assert!(!d.is_empty(), "empty extent at {}", s);
                    if let Some(le) = last_end {
                        // Strictly disjoint AND non-adjacent after writes
                        // (flush splits may leave adjacency; allow touching).
                        assert!(*s >= le, "overlapping extents");
                    }
                    last_end = Some(s + d.len() as u64);
                }
            }
        }
    }
}
