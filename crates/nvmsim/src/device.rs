//! The byte-addressable NVM device.
//!
//! Writes land in a volatile layer (modelling the NIC/CPU cache hierarchy)
//! and only become durable when flushed — exactly the boundary HyperLoop's
//! `gFLUSH` primitive exists to manage. A [`NvmDevice::power_failure`] throws
//! away everything volatile, so tests can prove that unflushed RDMA WRITEs
//! are really lost.

use crate::overlay::DirtyOverlay;
use std::fmt;

/// Error type for out-of-range NVM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutOfBoundsError {
    /// Requested offset.
    pub offset: u64,
    /// Requested length.
    pub len: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl fmt::Display for AccessOutOfBoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access [{}, {}) exceeds device capacity {}",
            self.offset,
            self.offset + self.len,
            self.capacity
        )
    }
}

impl std::error::Error for AccessOutOfBoundsError {}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmStats {
    /// Bytes accepted by `write` (volatile or durable).
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Number of flush operations (any granularity).
    pub flushes: u64,
    /// Bytes committed to the durable medium by flushes.
    pub bytes_flushed: u64,
    /// Number of injected power failures.
    pub power_failures: u64,
}

impl NvmStats {
    /// Snapshots every counter into `reg` under a dotted `prefix`.
    pub fn export_into(&self, reg: &mut simcore::MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.bytes_written"), self.bytes_written);
        reg.counter_set(&format!("{prefix}.bytes_read"), self.bytes_read);
        reg.counter_set(&format!("{prefix}.flushes"), self.flushes);
        reg.counter_set(&format!("{prefix}.bytes_flushed"), self.bytes_flushed);
        reg.counter_set(&format!("{prefix}.power_failures"), self.power_failures);
    }
}

/// A simulated NVM DIMM: durable array + volatile write-back layer.
///
/// ```
/// use nvmsim::NvmDevice;
///
/// let mut nvm = NvmDevice::new(1024);
/// nvm.write(0, b"hello")?;
/// assert_eq!(nvm.read_vec(0, 5)?, b"hello");       // reads are coherent
/// assert!(!nvm.is_durable(0, 5)?);                 // but not yet durable
/// nvm.flush_range(0, 5)?;
/// assert!(nvm.is_durable(0, 5)?);
/// nvm.power_failure();
/// assert_eq!(nvm.read_vec(0, 5)?, b"hello");       // survived the crash
/// # Ok::<(), nvmsim::AccessOutOfBoundsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    durable: Vec<u8>,
    volatile: DirtyOverlay,
    stats: NvmStats,
}

impl NvmDevice {
    /// Creates a zero-filled device of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        NvmDevice {
            durable: vec![0; capacity as usize],
            volatile: DirtyOverlay::new(),
            stats: NvmStats::default(),
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.durable.len() as u64
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NvmStats {
        self.stats
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), AccessOutOfBoundsError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity())
        {
            return Err(AccessOutOfBoundsError {
                offset,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    /// Writes `data` at `offset` into the volatile layer.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), AccessOutOfBoundsError> {
        let _t = simcore::hostprof::scope("nvmsim.write");
        self.check(offset, data.len() as u64)?;
        self.volatile.write(offset, data);
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Writes and immediately flushes (a durable store).
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn write_durable(
        &mut self,
        offset: u64,
        data: &[u8],
    ) -> Result<(), AccessOutOfBoundsError> {
        self.write(offset, data)?;
        self.flush_range(offset, data.len() as u64)
    }

    /// Reads `buf.len()` bytes at `offset` (coherent: sees volatile bytes).
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), AccessOutOfBoundsError> {
        let _t = simcore::hostprof::scope("nvmsim.read");
        self.check(offset, buf.len() as u64)?;
        buf.copy_from_slice(&self.durable[offset as usize..offset as usize + buf.len()]);
        self.volatile.apply_to(offset, buf);
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Reads `len` bytes at `offset` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn read_vec(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, AccessOutOfBoundsError> {
        let mut buf = vec![0; len as usize];
        self.read(offset, &mut buf)?;
        Ok(buf)
    }

    /// Reads the *durable* bytes only — what a recovery after power failure
    /// would observe. Does not count towards read statistics.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn read_durable_vec(
        &self,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, AccessOutOfBoundsError> {
        self.check(offset, len)?;
        Ok(self.durable[offset as usize..(offset + len) as usize].to_vec())
    }

    /// Commits all volatile bytes in `[offset, offset+len)` to the durable
    /// medium.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn flush_range(&mut self, offset: u64, len: u64) -> Result<(), AccessOutOfBoundsError> {
        let _t = simcore::hostprof::scope("nvmsim.flush");
        self.check(offset, len)?;
        self.stats.flushes += 1;
        let stats = &mut self.stats;
        let durable = &mut self.durable;
        self.volatile.take_range_with(offset, len, |o, bytes| {
            stats.bytes_flushed += bytes.len() as u64;
            durable[o as usize..o as usize + bytes.len()].copy_from_slice(bytes);
        });
        Ok(())
    }

    /// Commits every volatile byte.
    pub fn flush_all(&mut self) {
        self.stats.flushes += 1;
        let stats = &mut self.stats;
        let durable = &mut self.durable;
        self.volatile.take_all_with(|o, bytes| {
            stats.bytes_flushed += bytes.len() as u64;
            durable[o as usize..o as usize + bytes.len()].copy_from_slice(bytes);
        });
    }

    /// True if no byte of `[offset, offset+len)` is still volatile.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfBoundsError`] if the range exceeds capacity.
    pub fn is_durable(&self, offset: u64, len: u64) -> Result<bool, AccessOutOfBoundsError> {
        self.check(offset, len)?;
        Ok(self.volatile.is_clean_range(offset, len))
    }

    /// Total bytes currently volatile (unflushed).
    pub fn volatile_bytes(&self) -> u64 {
        self.volatile.dirty_bytes()
    }

    /// Injects a power failure: all volatile bytes are lost. Reads afterwards
    /// observe only what was flushed.
    pub fn power_failure(&mut self) {
        self.volatile.clear();
        self.stats.power_failures += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_reads_before_flush() {
        let mut nvm = NvmDevice::new(64);
        nvm.write(8, b"abc").unwrap();
        assert_eq!(nvm.read_vec(8, 3).unwrap(), b"abc");
        assert_eq!(nvm.read_durable_vec(8, 3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn power_failure_loses_unflushed() {
        let mut nvm = NvmDevice::new(64);
        nvm.write(0, b"keep").unwrap();
        nvm.flush_range(0, 4).unwrap();
        nvm.write(10, b"lose").unwrap();
        nvm.power_failure();
        assert_eq!(nvm.read_vec(0, 4).unwrap(), b"keep");
        assert_eq!(nvm.read_vec(10, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn partial_flush_splits_durability() {
        let mut nvm = NvmDevice::new(64);
        nvm.write(0, &[1; 8]).unwrap();
        nvm.flush_range(0, 4).unwrap();
        assert!(nvm.is_durable(0, 4).unwrap());
        assert!(!nvm.is_durable(4, 4).unwrap());
        nvm.power_failure();
        assert_eq!(nvm.read_vec(0, 8).unwrap(), vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn flush_all_commits_everything() {
        let mut nvm = NvmDevice::new(128);
        nvm.write(0, &[1; 8]).unwrap();
        nvm.write(100, &[2; 8]).unwrap();
        nvm.flush_all();
        assert_eq!(nvm.volatile_bytes(), 0);
        nvm.power_failure();
        assert_eq!(nvm.read_vec(100, 8).unwrap(), vec![2; 8]);
    }

    #[test]
    fn write_durable_is_immediately_durable() {
        let mut nvm = NvmDevice::new(64);
        nvm.write_durable(5, b"xy").unwrap();
        assert!(nvm.is_durable(5, 2).unwrap());
    }

    #[test]
    fn out_of_bounds_reports_error() {
        let mut nvm = NvmDevice::new(16);
        let err = nvm.write(10, &[0; 10]).unwrap_err();
        assert_eq!(err.capacity, 16);
        assert!(nvm.read_vec(17, 1).is_err());
        assert!(nvm.flush_range(0, 17).is_err());
        assert!(nvm.is_durable(16, 1).is_err());
        // Offset overflow must not panic.
        assert!(nvm.write(u64::MAX, &[1]).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut nvm = NvmDevice::new(64);
        nvm.write(0, &[0; 10]).unwrap();
        nvm.read_vec(0, 4).unwrap();
        nvm.flush_range(0, 10).unwrap();
        nvm.power_failure();
        let s = nvm.stats();
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_flushed, 10);
        assert_eq!(s.power_failures, 1);
    }

    #[test]
    fn overwrite_before_flush_keeps_latest() {
        let mut nvm = NvmDevice::new(64);
        nvm.write(0, b"old").unwrap();
        nvm.write(0, b"new").unwrap();
        nvm.flush_range(0, 3).unwrap();
        nvm.power_failure();
        assert_eq!(nvm.read_vec(0, 3).unwrap(), b"new");
    }
}
