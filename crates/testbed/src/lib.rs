//! # testbed — the simulated 20-machine rack
//!
//! Composes the substrates into one runnable [`Cluster`]:
//!
//! * [`rnicsim`] — RDMA NICs, host NVM, network;
//! * [`cpusched`] — one multi-tenant CPU scheduler per node;
//! * application processes ([`HostApp`]) bound to completion queues, whose
//!   handlers only run once their process is scheduled onto a core.
//!
//! This is the stage on which both the HyperLoop data path (NIC-only, no
//! handler in the loop) and the Naïve-RDMA baseline (handler on every hop)
//! are measured.
//!
//! ```
//! use testbed::{Cluster, HostApp, HostEvent, Env};
//! use simcore::{SimDuration, SimTime};
//! use cpusched::ProcKind;
//! use netsim::NodeId;
//!
//! struct Ticker { ticks: u32 }
//! impl HostApp for Ticker {
//!     fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
//!         match ev {
//!             HostEvent::Start => env.set_timer(SimDuration::from_micros(10), 0),
//!             HostEvent::Timer(_) => self.ticks += 1,
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut cluster = Cluster::with_defaults(1, 4);
//! let p = cluster.add_app(NodeId(0), ProcKind::EventDriven, Box::new(Ticker { ticks: 0 }));
//! let mut sim = cluster.into_sim();
//! sim.run_until(SimTime::from_millis(1));
//! assert_eq!(sim.model.app_mut::<Ticker>(p).ticks, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod env;
pub mod placement;
pub mod types;

pub use cluster::{drive, Cluster};
pub use env::{Env, StagedAction};
pub use placement::ShardPlacement;
pub use types::{ClusterConfig, ClusterEvent, HostApp, HostEvent, ProcRef, TaskKind};

#[cfg(test)]
mod tests {
    use super::*;
    use cpusched::{HogProfile, ProcKind};
    use netsim::NodeId;
    use rnicsim::{wqe_flags, CqId, Opcode, QpId, RecvWqe, Wqe};
    use simcore::prelude::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    /// Client: every `period`, writes 64 bytes to the server and records the
    /// round-trip latency of the completion.
    struct Client {
        qp: QpId,
        cq: CqId,
        src: u64,
        dst: u64,
        period: SimDuration,
        sent_at: Option<SimTime>,
        hist: Histogram,
        remaining: u32,
    }

    impl HostApp for Client {
        fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
            match ev {
                HostEvent::Start => env.set_timer(self.period, 0),
                HostEvent::Timer(_) => {
                    self.sent_at = Some(env.now());
                    env.post_send(
                        N0,
                        self.qp,
                        Wqe {
                            opcode: Opcode::Write,
                            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                            local_addr: self.src,
                            len: 64,
                            remote_addr: self.dst,
                            ..Wqe::default()
                        },
                    );
                }
                HostEvent::CqReady(cq) => {
                    assert_eq!(cq, self.cq);
                    let n = env.poll_cq(N0, cq, 16).len();
                    if n > 0 {
                        let sent = self.sent_at.take().expect("completion without send");
                        self.hist.record(env.now().since(sent));
                        if self.remaining > 0 {
                            self.remaining -= 1;
                            env.set_timer(self.period, 0);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Server: counts SEND arrivals via its bound CQ.
    struct Server {
        qp: QpId,
        cq: CqId,
        buf: u64,
        received: u32,
    }

    impl HostApp for Server {
        fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
            if let HostEvent::CqReady(cq) = ev {
                assert_eq!(cq, self.cq);
                let cqes = env.poll_cq(N1, cq, 64);
                self.received += cqes.len() as u32;
                for _ in &cqes {
                    env.post_recv(
                        N1,
                        self.qp,
                        RecvWqe {
                            wr_id: 0,
                            sges: vec![(self.buf, 4096)],
                        },
                    );
                }
            }
        }
    }

    fn build_pair(cluster: &mut Cluster) -> (QpId, QpId, CqId, CqId) {
        let cq0 = cluster.fab.create_cq(N0);
        let cq1 = cluster.fab.create_cq(N1);
        let q0 = cluster.fab.create_qp(N0, cq0, cq0);
        let q1 = cluster.fab.create_qp(N1, cq1, cq1);
        cluster.fab.connect(N0, q0, N1, q1);
        (q0, q1, cq0, cq1)
    }

    #[test]
    fn client_write_completion_reaches_handler() {
        let mut cluster = Cluster::with_defaults(2, 4);
        let (q0, _q1, cq0, _cq1) = build_pair(&mut cluster);
        let dst = cluster.fab.alloc(N1, 4096);
        cluster.fab.reg_mr(N1, dst, 4096);
        let src = cluster.fab.alloc(N0, 64);
        let client = cluster.add_app(
            N0,
            ProcKind::EventDriven,
            Box::new(Client {
                qp: q0,
                cq: cq0,
                src,
                dst,
                period: SimDuration::from_micros(50),
                sent_at: None,
                hist: Histogram::new(),
                remaining: 9,
            }),
        );
        cluster.bind_cq(client, N0, cq0, SimDuration::from_micros(1));
        let mut sim = cluster.into_sim();
        sim.run_until(SimTime::from_millis(50));
        let hist = &sim.model.app_mut::<Client>(client).hist;
        assert_eq!(hist.count(), 10, "all writes completed");
        // Idle 2-node RTT plus one wake-up: a handful of microseconds.
        assert!(hist.max() < SimDuration::from_micros(50), "{}", hist.max());
    }

    #[test]
    fn send_wakes_server_app() {
        let mut cluster = Cluster::with_defaults(2, 4);
        let (q0, q1, _cq0, cq1) = build_pair(&mut cluster);
        let buf = cluster.fab.alloc(N1, 4096);
        let server = cluster.add_app(
            N1,
            ProcKind::EventDriven,
            Box::new(Server {
                qp: q1,
                cq: cq1,
                buf,
                received: 0,
            }),
        );
        cluster.bind_cq(server, N1, cq1, SimDuration::from_micros(2));
        // Pre-post initial recvs and fire three sends from outside the sim.
        let mut sim = cluster.into_sim();
        let mut out = Outbox::new();
        for _ in 0..4 {
            sim.model.fab.post_recv(
                SimTime::ZERO,
                N1,
                q1,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![(buf, 4096)],
                },
                &mut out,
            );
        }
        let src = sim.model.fab.alloc(N0, 64);
        for _ in 0..3 {
            sim.model.fab.post_send(
                SimTime::ZERO,
                N0,
                q0,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: src,
                    len: 32,
                    ..Wqe::default()
                },
                &mut out,
            );
        }
        for (delay, eff) in out.drain() {
            if let rnicsim::NicEffect::Internal(ev) = eff {
                sim.queue.push_after(delay, ClusterEvent::Nic(ev));
            }
        }
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.model.app_mut::<Server>(server).received, 3);
    }

    #[test]
    fn background_load_inflates_handler_latency() {
        let mut results = Vec::new();
        for hogs in [0u32, 40] {
            let mut cluster = Cluster::with_defaults(2, 4);
            let (q0, _q1, cq0, _cq1) = build_pair(&mut cluster);
            let dst = cluster.fab.alloc(N1, 4096);
            cluster.fab.reg_mr(N1, dst, 4096);
            let src = cluster.fab.alloc(N0, 64);
            let client = cluster.add_app(
                N0,
                ProcKind::EventDriven,
                Box::new(Client {
                    qp: q0,
                    cq: cq0,
                    src,
                    dst,
                    period: SimDuration::from_micros(500),
                    sent_at: None,
                    hist: Histogram::new(),
                    remaining: 199,
                }),
            );
            cluster.bind_cq(client, N0, cq0, SimDuration::from_micros(1));
            // The *client's* node is the contended one here: its completion
            // handler has to fight the hogs for CPU.
            cluster.add_background_load(N0, hogs, HogProfile::default());
            let mut sim = cluster.into_sim();
            sim.run_until(SimTime::from_secs(2));
            let h = &sim.model.app_mut::<Client>(client).hist;
            assert!(h.count() >= 150, "lost completions: {}", h.count());
            results.push(h.p99());
        }
        assert!(
            results[1] > results[0] * 10,
            "hogs did not inflate tail: {} vs {}",
            results[1],
            results[0]
        );
    }

    #[test]
    fn submit_work_charges_cpu_before_continuation() {
        struct Worker {
            done_at: Option<SimTime>,
        }
        impl HostApp for Worker {
            fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
                match ev {
                    HostEvent::Start => env.submit_work(SimDuration::from_millis(2), 1),
                    HostEvent::WorkDone(1) => self.done_at = Some(env.now()),
                    _ => {}
                }
            }
        }
        let mut cluster = Cluster::with_defaults(1, 2);
        let p = cluster.add_app(
            N0,
            ProcKind::EventDriven,
            Box::new(Worker { done_at: None }),
        );
        let mut sim = cluster.into_sim();
        sim.run_until(SimTime::from_secs(1));
        let done = sim
            .model
            .app_mut::<Worker>(p)
            .done_at
            .expect("work finished");
        assert!(done.since(SimTime::ZERO) >= SimDuration::from_millis(2));
        assert!(done.since(SimTime::ZERO) < SimDuration::from_millis(4));
    }

    #[test]
    fn timers_repeat_and_carry_tokens() {
        struct Periodic {
            fired: Vec<u64>,
        }
        impl HostApp for Periodic {
            fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
                match ev {
                    HostEvent::Start => {
                        env.set_timer(SimDuration::from_micros(100), 7);
                        env.set_timer(SimDuration::from_micros(300), 8);
                    }
                    HostEvent::Timer(t) => self.fired.push(t),
                    _ => {}
                }
            }
        }
        let mut cluster = Cluster::with_defaults(1, 2);
        let p = cluster.add_app(
            N0,
            ProcKind::EventDriven,
            Box::new(Periodic { fired: vec![] }),
        );
        let mut sim = cluster.into_sim();
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.model.app_mut::<Periodic>(p).fired, vec![7, 8]);
    }

    #[test]
    fn setup_fabric_effects_fire_at_start() {
        // Posting owned WQEs during setup emits engine events before the
        // simulation exists; they must be delivered at time zero.
        let mut cluster = Cluster::with_defaults(2, 2);
        let (q0, _q1, cq0, _cq1) = build_pair(&mut cluster);
        let dst = cluster.fab.alloc(N1, 4096);
        cluster.fab.reg_mr(N1, dst, 4096);
        let src = cluster.fab.alloc(N0, 64);
        cluster.setup_fabric(|ctx| {
            ctx.post_send(
                N0,
                q0,
                Wqe {
                    opcode: Opcode::Write,
                    flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                    local_addr: src,
                    len: 16,
                    remote_addr: dst,
                    ..Wqe::default()
                },
            );
        });
        let mut sim = cluster.into_sim();
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N0, cq0), 1, "setup write completed");
    }

    #[test]
    fn proc_cpu_accounts_occupancy_and_useful_work() {
        struct Burner;
        impl HostApp for Burner {
            fn on_event(&mut self, env: &mut Env<'_>, ev: HostEvent) {
                if ev == HostEvent::Start {
                    env.submit_work(SimDuration::from_millis(5), 1);
                }
            }
        }
        let mut cluster = Cluster::with_defaults(1, 2);
        let p = cluster.add_app(N0, ProcKind::EventDriven, Box::new(Burner));
        let mut sim = cluster.into_sim();
        sim.run_until(SimTime::from_millis(50));
        let (busy, useful) = sim.model.proc_cpu(p);
        assert_eq!(useful, SimDuration::from_millis(5) + SimDuration::ZERO);
        assert!(busy >= useful, "occupancy includes the context switch");
        assert!(busy < useful + SimDuration::from_micros(50));
    }

    #[test]
    fn external_drive_routes_host_notifications() {
        // A verb posted via `drive` whose completion lands on a bound CQ
        // must still wake the bound app.
        let mut cluster = Cluster::with_defaults(2, 2);
        let (q0, q1, _cq0, cq1) = build_pair(&mut cluster);
        let buf = cluster.fab.alloc(N1, 4096);
        let server = cluster.add_app(
            N1,
            ProcKind::EventDriven,
            Box::new(Server {
                qp: q1,
                cq: cq1,
                buf,
                received: 0,
            }),
        );
        cluster.bind_cq(server, N1, cq1, SimDuration::from_micros(1));
        let mut sim = cluster.into_sim();
        drive(&mut sim, |ctx| {
            ctx.post_recv(
                N1,
                q1,
                RecvWqe {
                    wr_id: 0,
                    sges: vec![(buf, 4096)],
                },
            );
            let src = ctx.fab.alloc(N0, 64);
            ctx.post_send(
                N0,
                q0,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: src,
                    len: 8,
                    ..Wqe::default()
                },
            );
        });
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.model.app_mut::<Server>(server).received, 1);
    }

    #[test]
    #[should_panic(expected = "different nodes")]
    fn binding_cq_across_nodes_panics() {
        let mut cluster = Cluster::with_defaults(2, 2);
        let cq1 = cluster.fab.create_cq(N1);
        struct Noop;
        impl HostApp for Noop {
            fn on_event(&mut self, _env: &mut Env<'_>, _ev: HostEvent) {}
        }
        let p = cluster.add_app(N0, ProcKind::EventDriven, Box::new(Noop));
        cluster.bind_cq(p, N1, cq1, SimDuration::from_micros(1));
    }
}
