//! Shard-aware placement: which rack nodes host which replication chain.
//!
//! A [`ShardPlacement`] turns "I want `n` shards" into one replica chain
//! (an ordered `Vec<NodeId>`) per shard, against a concrete cluster. The
//! client node never appears in a chain, chains never repeat a node, and
//! the same placement + cluster size always yields the same layout — shard
//! layouts are part of the deterministic experiment configuration, not a
//! runtime choice.

use netsim::NodeId;
use simcore::MetricsRegistry;

use crate::cluster::Cluster;

/// How replica chains are laid out over the rack.
#[derive(Debug, Clone)]
pub enum ShardPlacement {
    /// Deal chains of `replicas_per_shard` nodes round-robin over every
    /// node except the client, in node-id order. With enough nodes the
    /// chains are disjoint; on a small rack consecutive shards wrap and
    /// share NICs (which is exactly the contention you then measure).
    RoundRobin {
        /// Chain length of every shard.
        replicas_per_shard: u32,
    },
    /// Fully explicit layout: one ordered replica chain per shard.
    Explicit(Vec<Vec<NodeId>>),
}

impl ShardPlacement {
    /// Resolves the placement into one replica chain per shard for a rack
    /// of `node_count` machines whose client lives on `client`.
    ///
    /// # Panics
    ///
    /// Panics if the layout is impossible: zero shards, chains longer than
    /// the available (non-client) nodes, explicit chains that are empty,
    /// repeat a node, include the client, reference nodes outside the rack,
    /// or whose count disagrees with `n_shards`.
    pub fn chains(&self, n_shards: u32, client: NodeId, node_count: u32) -> Vec<Vec<NodeId>> {
        assert!(n_shards > 0, "placement needs at least one shard");
        assert!(client.0 < node_count, "client node outside the rack");
        match self {
            ShardPlacement::RoundRobin { replicas_per_shard } => {
                let rps = *replicas_per_shard;
                assert!(rps > 0, "chains must have at least one replica");
                let pool: Vec<NodeId> = (0..node_count)
                    .map(NodeId)
                    .filter(|&n| n != client)
                    .collect();
                assert!(
                    pool.len() >= rps as usize,
                    "chain of {rps} needs {rps} non-client nodes, rack has {}",
                    pool.len()
                );
                (0..n_shards)
                    .map(|s| {
                        (0..rps)
                            .map(|r| pool[((s * rps + r) as usize) % pool.len()])
                            .collect()
                    })
                    .collect()
            }
            ShardPlacement::Explicit(chains) => {
                assert_eq!(
                    chains.len(),
                    n_shards as usize,
                    "explicit layout has {} chains for {n_shards} shards",
                    chains.len()
                );
                for (s, chain) in chains.iter().enumerate() {
                    assert!(!chain.is_empty(), "shard {s} has an empty chain");
                    for (i, &n) in chain.iter().enumerate() {
                        assert!(
                            n.0 < node_count,
                            "shard {s} references node {n} outside rack"
                        );
                        assert!(n != client, "shard {s} places a replica on the client {n}");
                        assert!(
                            !chain[..i].contains(&n),
                            "shard {s} repeats node {n} in its chain"
                        );
                    }
                }
                chains.clone()
            }
        }
    }
}

impl Cluster {
    /// Resolves `placement` against this cluster (client excluded, bounds
    /// checked). Convenience over [`ShardPlacement::chains`].
    pub fn place_shards(
        &self,
        placement: &ShardPlacement,
        n_shards: u32,
        client: NodeId,
    ) -> Vec<Vec<NodeId>> {
        placement.chains(n_shards, client, self.fab.node_count())
    }

    /// Snapshots chain-local statistics per shard into `reg`: for every
    /// shard `s` and every replica node `n` in its chain, the node's NVM
    /// counters land under `{prefix}.shard{s}.nvm.node{n}.*` plus a
    /// `{prefix}.shard{s}.chain_len` gauge — so a report shows at a
    /// glance which chains actually carried traffic. Exporting twice is
    /// idempotent (values are set, not accumulated).
    pub fn export_shards_into(
        &self,
        reg: &mut MetricsRegistry,
        chains: &[Vec<NodeId>],
        prefix: &str,
    ) {
        for (s, chain) in chains.iter().enumerate() {
            let sp = format!("{prefix}.shard{s}");
            reg.set_gauge(&format!("{sp}.chain_len"), chain.len() as f64);
            for &n in chain {
                self.fab
                    .nvm_stats(n)
                    .export_into(reg, &format!("{sp}.nvm.node{}", n.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_deals_disjoint_chains_when_room() {
        let p = ShardPlacement::RoundRobin {
            replicas_per_shard: 3,
        };
        let chains = p.chains(4, NodeId(0), 13);
        assert_eq!(chains.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for chain in &chains {
            assert_eq!(chain.len(), 3);
            for &n in chain {
                assert_ne!(n, NodeId(0), "client must not host a replica");
                assert!(seen.insert(n), "13 nodes fit 4 disjoint chains of 3");
            }
        }
    }

    #[test]
    fn round_robin_wraps_on_small_racks() {
        let p = ShardPlacement::RoundRobin {
            replicas_per_shard: 3,
        };
        let chains = p.chains(4, NodeId(0), 6); // 5 non-client nodes, must share
        assert_eq!(chains.len(), 4);
        for chain in &chains {
            assert_eq!(chain.len(), 3);
            for (i, &n) in chain.iter().enumerate() {
                assert_ne!(n, NodeId(0));
                assert!(!chain[..i].contains(&n), "no repeats within a chain");
            }
        }
    }

    #[test]
    fn round_robin_is_deterministic() {
        let p = ShardPlacement::RoundRobin {
            replicas_per_shard: 2,
        };
        assert_eq!(p.chains(8, NodeId(3), 20), p.chains(8, NodeId(3), 20));
    }

    #[test]
    fn explicit_layout_passes_validation() {
        let layout = vec![vec![NodeId(1), NodeId(2)], vec![NodeId(3), NodeId(4)]];
        let p = ShardPlacement::Explicit(layout.clone());
        assert_eq!(p.chains(2, NodeId(0), 5), layout);
    }

    #[test]
    #[should_panic(expected = "places a replica on the client")]
    fn explicit_layout_rejects_client_in_chain() {
        ShardPlacement::Explicit(vec![vec![NodeId(0), NodeId(1)]]).chains(1, NodeId(0), 4);
    }

    #[test]
    #[should_panic(expected = "repeats node")]
    fn explicit_layout_rejects_duplicate_replica() {
        ShardPlacement::Explicit(vec![vec![NodeId(1), NodeId(1)]]).chains(1, NodeId(0), 4);
    }

    #[test]
    #[should_panic(expected = "outside rack")]
    fn explicit_layout_rejects_out_of_rack_node() {
        ShardPlacement::Explicit(vec![vec![NodeId(9)]]).chains(1, NodeId(0), 4);
    }
}
