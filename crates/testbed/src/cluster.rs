//! The [`Cluster`]: an RDMA fabric plus one multi-tenant CPU scheduler per
//! node, with host applications attached to completion queues.
//!
//! The flow that the whole reproduction hinges on:
//!
//! 1. a CQE lands on a bound completion queue;
//! 2. the NIC raises a host notification;
//! 3. the owning *process* must get CPU — through the node's scheduler, with
//!    wake latency, run-queue waits and context switches;
//! 4. only then does the application handler run and post follow-up verbs.
//!
//! HyperLoop's entire point is that steps 2–4 disappear on replicas: the
//! pre-posted WAIT chains react inside the NIC. Both paths run on this same
//! cluster, so the comparison is apples-to-apples.

use crate::env::{Env, StagedAction};
use crate::types::{ClusterConfig, ClusterEvent, HostApp, HostEvent, ProcRef, TaskKind};
use cpusched::{CpuEffect, CpuScheduler, HogProfile, ProcKind, TaskId};
use netsim::NodeId;
use rnicsim::{CqId, NicCtx, NicEffect, RdmaFabric};
use simcore::{
    simtrace::NO_OP, EventQueue, MetricsRegistry, Model, Outbox, SimDuration, SimRng, SimTime,
    Simulation, Tracer,
};
use std::any::Any;
use std::collections::HashMap;

struct ProcEntry {
    node: NodeId,
    cpu_proc: cpusched::ProcId,
}

/// A multi-node testbed: NICs, memories, network, CPUs and applications.
pub struct Cluster {
    /// The RDMA fabric (NICs, host memories, network). Public so that
    /// experiment drivers and tests can reach the verbs API directly.
    pub fab: RdmaFabric,
    scheds: Vec<CpuScheduler>,
    procs: Vec<ProcEntry>,
    apps: Vec<Option<Box<dyn HostApp>>>,
    cq_bindings: HashMap<(NodeId, CqId), (ProcRef, SimDuration)>,
    tasks: HashMap<u64, (ProcRef, TaskKind)>,
    next_task: u64,
    config: ClusterConfig,
    /// Scheduler effects emitted during setup, before the event queue exists;
    /// drained by the `Start` event.
    pending_boot: Vec<(NodeId, Vec<(SimDuration, CpuEffect)>)>,
    /// Fabric effects emitted during setup (e.g. HyperLoop group wiring);
    /// drained by the `Start` event.
    pending_nic_boot: Vec<(SimDuration, NicEffect)>,
    /// Reused effect buffers — one set of allocations for the whole run
    /// instead of a fresh outbox/vector per simulation event. Taken with
    /// `mem::take` around each use, so accidental re-entrancy degrades to
    /// a fresh allocation instead of corruption.
    nic_scratch: Outbox<NicEffect>,
    cpu_scratch: Outbox<CpuEffect>,
    route_scratch: Vec<(SimDuration, NicEffect)>,
    staged_scratch: Vec<StagedAction>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.fab.node_count())
            .field("procs", &self.procs.len())
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster of `nodes` machines with `cores` cores and
    /// `mem_capacity` bytes of NVM each.
    pub fn new(nodes: u32, cores: u32, mem_capacity: u64, config: ClusterConfig) -> Self {
        let mut seed_rng = SimRng::new(config.seed);
        Cluster {
            fab: RdmaFabric::new(
                nodes,
                mem_capacity,
                config.nic,
                config.fabric,
                seed_rng.next_u64(),
            ),
            scheds: (0..nodes)
                .map(|i| CpuScheduler::new(cores, config.sched, seed_rng.fork(i as u64)))
                .collect(),
            procs: Vec::new(),
            apps: Vec::new(),
            cq_bindings: HashMap::new(),
            tasks: HashMap::new(),
            next_task: 0,
            config,
            pending_boot: Vec::new(),
            pending_nic_boot: Vec::new(),
            nic_scratch: Outbox::new(),
            cpu_scratch: Outbox::new(),
            route_scratch: Vec::new(),
            staged_scratch: Vec::new(),
        }
    }

    /// Builder-style constructor with default configuration.
    pub fn with_defaults(nodes: u32, cores: u32) -> Self {
        Cluster::new(nodes, cores, 1 << 26, ClusterConfig::default())
    }

    /// Wraps the cluster into a runnable simulation; application `on_start`
    /// hooks fire at time zero.
    pub fn into_sim(self) -> Simulation<Cluster> {
        let mut sim = Simulation::new(self);
        sim.queue.push(SimTime::ZERO, ClusterEvent::Start);
        sim
    }

    /// Installs a trace sink on every layer of the cluster: the RDMA fabric
    /// (and its network) plus each node's CPU scheduler. Group clients must
    /// be wired separately (`GroupClient::set_tracer`) since they live in
    /// application code.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fab.set_tracer(tracer.clone());
        for (i, sched) in self.scheds.iter_mut().enumerate() {
            sched.set_tracer(tracer.clone(), i as u32);
        }
    }

    /// Snapshots fabric, NVM, network and per-node scheduler statistics into
    /// a [`MetricsRegistry`] under `prefix`.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.fab.export_into(reg, &format!("{prefix}.fabric"));
        for (i, sched) in self.scheds.iter().enumerate() {
            sched
                .stats()
                .export_into(reg, &format!("{prefix}.sched.node{i}"));
            // Point-in-time runqueue depth, for counter-track sampling.
            reg.set_gauge(
                &format!("{prefix}.sched.node{i}.runqueue"),
                sched.runqueue_len() as f64,
            );
        }
    }

    /// The CPU scheduler of one node (for statistics).
    pub fn sched(&self, node: NodeId) -> &CpuScheduler {
        &self.scheds[node.0 as usize]
    }

    /// Mutable scheduler access (e.g. to reset counters after warm-up).
    pub fn sched_mut(&mut self, node: NodeId) -> &mut CpuScheduler {
        &mut self.scheds[node.0 as usize]
    }

    /// Total context switches across all nodes.
    pub fn total_context_switches(&self) -> u64 {
        self.scheds.iter().map(|s| s.stats().context_switches).sum()
    }

    /// Runs fabric setup code (e.g. `HyperLoopGroup::setup`) before the
    /// simulation starts, handing it a time-zero [`NicCtx`]; any effects it
    /// posts are delivered at time zero.
    pub fn setup_fabric<R>(&mut self, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
        let mut out = Outbox::new();
        let mut ctx = NicCtx::new(&mut self.fab, SimTime::ZERO, &mut out);
        let r = f(&mut ctx);
        self.pending_nic_boot.extend(out.drain());
        r
    }

    /// Registers an application process on `node`. The handler's `on_start`
    /// runs at time zero (or immediately if the simulation already started).
    pub fn add_app(&mut self, node: NodeId, kind: ProcKind, app: Box<dyn HostApp>) -> ProcRef {
        // Spawning may emit scheduler effects (polling processes dispatch
        // immediately); collect them into a scratch outbox handled lazily —
        // at time zero nothing is racing.
        let mut scratch = Outbox::new();
        let cpu_proc = self.scheds[node.0 as usize].spawn(kind, SimTime::ZERO, &mut scratch);
        let pr = ProcRef(self.procs.len() as u32);
        self.procs.push(ProcEntry { node, cpu_proc });
        self.apps.push(Some(app));
        self.pending_boot.push((node, scratch.into_vec()));
        pr
    }

    /// Adds `count` bursty background tenant processes to `node`.
    pub fn add_background_load(&mut self, node: NodeId, count: u32, profile: HogProfile) {
        let mut scratch = Outbox::new();
        for _ in 0..count {
            self.scheds[node.0 as usize].spawn_hog(profile, SimTime::ZERO, &mut scratch);
        }
        self.pending_boot.push((node, scratch.into_vec()));
    }

    /// Routes CQEs of `(node, cq)` to `proc`: each notification costs
    /// `handler_cost` of CPU before the handler runs. Arms the CQ.
    pub fn bind_cq(&mut self, proc: ProcRef, node: NodeId, cq: CqId, handler_cost: SimDuration) {
        assert_eq!(
            self.procs[proc.0 as usize].node, node,
            "process and CQ live on different nodes"
        );
        self.cq_bindings.insert((node, cq), (proc, handler_cost));
        self.fab.arm_cq(node, cq);
    }

    /// Node a registered process lives on.
    pub fn proc_node(&self, proc: ProcRef) -> NodeId {
        self.procs[proc.0 as usize].node
    }

    /// CPU accounting of a registered process: `(occupancy, useful)` time.
    /// Occupancy is what `top` would show (context switches and poll-spin
    /// included); useful is time executing submitted work.
    pub fn proc_cpu(&self, proc: ProcRef) -> (SimDuration, SimDuration) {
        let entry = &self.procs[proc.0 as usize];
        let sched = &self.scheds[entry.node.0 as usize];
        (
            sched.proc_busy(entry.cpu_proc),
            sched.proc_useful(entry.cpu_proc),
        )
    }

    /// Downcasts a registered application to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the type does not match or the app is mid-callback.
    pub fn app_mut<T: HostApp>(&mut self, proc: ProcRef) -> &mut T {
        let app = self.apps[proc.0 as usize]
            .as_mut()
            .expect("app is mid-callback");
        let any: &mut dyn Any = app.as_mut();
        any.downcast_mut::<T>().expect("app type mismatch")
    }

    // ---- event routing ----------------------------------------------------

    fn route_nic(
        &mut self,
        now: SimTime,
        out: &mut Outbox<NicEffect>,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        // Draining may enqueue CPU tasks which emit further effects; loop.
        let mut nic_effects = std::mem::take(&mut self.route_scratch);
        nic_effects.extend(out.drain());
        while let Some((delay, eff)) = nic_effects.pop() {
            match eff {
                NicEffect::Internal(ev) => q.push_after(delay, ClusterEvent::Nic(ev)),
                NicEffect::HostNotify { node, cq } => {
                    if let Some(&(proc, cost)) = self.cq_bindings.get(&(node, cq)) {
                        let op = self.fab.cq_peek_op(node, cq);
                        self.submit_task(now, proc, TaskKind::CqReady(cq), cost, op, q);
                    }
                }
            }
        }
        self.route_scratch = nic_effects;
    }

    fn route_cpu(
        &mut self,
        node: NodeId,
        out: &mut Outbox<CpuEffect>,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        for (delay, eff) in out.drain() {
            match eff {
                CpuEffect::Internal(ev) => q.push_after(delay, ClusterEvent::Cpu { node, ev }),
                CpuEffect::TaskDone { task, .. } => {
                    q.push_after(delay, ClusterEvent::TaskDone { id: task.0 })
                }
            }
        }
    }

    fn submit_task(
        &mut self,
        now: SimTime,
        proc: ProcRef,
        kind: TaskKind,
        cost: SimDuration,
        op: u64,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        let id = self.next_task;
        self.next_task += 1;
        self.tasks.insert(id, (proc, kind));
        let entry = &self.procs[proc.0 as usize];
        let node = entry.node;
        let cpu_proc = entry.cpu_proc;
        let mut out = std::mem::take(&mut self.cpu_scratch);
        self.scheds[node.0 as usize].submit(cpu_proc, TaskId(id), cost, op, now, &mut out);
        self.route_cpu(node, &mut out, q);
        self.cpu_scratch = out;
    }

    fn run_handler(
        &mut self,
        now: SimTime,
        proc: ProcRef,
        event: HostEvent,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        let Some(mut app) = self.apps[proc.0 as usize].take() else {
            return; // re-entrant call; cannot happen with the task protocol
        };
        let mut nic_out = std::mem::take(&mut self.nic_scratch);
        let mut staged = std::mem::take(&mut self.staged_scratch);
        {
            let mut env = Env::new(now, proc, &mut self.fab, &mut nic_out, &mut staged);
            app.on_event(&mut env, event);
        }
        self.apps[proc.0 as usize] = Some(app);
        self.route_nic(now, &mut nic_out, q);
        self.nic_scratch = nic_out;
        for action in staged.drain(..) {
            match action {
                StagedAction::Timer { delay, token } => {
                    q.push_after(delay, ClusterEvent::TimerDue { proc, token });
                }
                StagedAction::Work { cost, token } => {
                    self.submit_task(now, proc, TaskKind::Work(token), cost, NO_OP, q);
                }
            }
        }
        self.staged_scratch = staged;
    }

    /// Post-handler protocol for CQ bindings: re-arm, and if completions
    /// raced in while the handler ran, schedule another round.
    fn rearm_cq(
        &mut self,
        now: SimTime,
        proc: ProcRef,
        cq: CqId,
        q: &mut EventQueue<ClusterEvent>,
    ) {
        let node = self.procs[proc.0 as usize].node;
        self.fab.arm_cq(node, cq);
        if self.fab.cq_depth(node, cq) > 0 {
            if let Some(&(p, cost)) = self.cq_bindings.get(&(node, cq)) {
                let op = self.fab.cq_peek_op(node, cq);
                self.submit_task(now, p, TaskKind::CqReady(cq), cost, op, q);
            }
        }
    }

    // Boot effects captured before the simulation existed.
    fn drain_boot(&mut self, q: &mut EventQueue<ClusterEvent>) {
        for (node, effects) in std::mem::take(&mut self.pending_boot) {
            let mut out = Outbox::new();
            out.extend(effects);
            self.route_cpu(node, &mut out, q);
        }
        let mut out = Outbox::new();
        out.extend(std::mem::take(&mut self.pending_nic_boot));
        let now = q.now();
        self.route_nic(now, &mut out, q);
    }
}

impl Model for Cluster {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, ev: ClusterEvent, q: &mut EventQueue<ClusterEvent>) {
        match ev {
            ClusterEvent::Start => {
                self.drain_boot(q);
                for i in 0..self.apps.len() {
                    self.run_handler(now, ProcRef(i as u32), HostEvent::Start, q);
                }
            }
            ClusterEvent::Nic(nic_ev) => {
                let mut out = std::mem::take(&mut self.nic_scratch);
                self.fab.handle(now, nic_ev, &mut out);
                self.route_nic(now, &mut out, q);
                self.nic_scratch = out;
            }
            ClusterEvent::Cpu { node, ev } => {
                let mut out = std::mem::take(&mut self.cpu_scratch);
                self.scheds[node.0 as usize].handle(now, ev, &mut out);
                self.route_cpu(node, &mut out, q);
                self.cpu_scratch = out;
            }
            ClusterEvent::TaskDone { id } => {
                let Some((proc, kind)) = self.tasks.remove(&id) else {
                    return;
                };
                match kind {
                    TaskKind::CqReady(cq) => {
                        self.run_handler(now, proc, HostEvent::CqReady(cq), q);
                        self.rearm_cq(now, proc, cq, q);
                    }
                    TaskKind::Timer(token) => {
                        self.run_handler(now, proc, HostEvent::Timer(token), q)
                    }
                    TaskKind::Work(token) => {
                        self.run_handler(now, proc, HostEvent::WorkDone(token), q)
                    }
                }
            }
            ClusterEvent::TimerDue { proc, token } => {
                // The timer interrupt wakes the process; the callback runs
                // once the process gets CPU.
                let cost = self.config.timer_handler_cost;
                self.submit_task(now, proc, TaskKind::Timer(token), cost, NO_OP, q);
            }
            ClusterEvent::HostNotify { node, cq } => {
                if let Some(&(proc, cost)) = self.cq_bindings.get(&(node, cq)) {
                    let op = self.fab.cq_peek_op(node, cq);
                    self.submit_task(now, proc, TaskKind::CqReady(cq), cost, op, q);
                }
            }
        }
    }
}

/// Runs external-driver code against a cluster simulation's fabric at the
/// current instant (handing it a bundled [`NicCtx`]), then routes whatever
/// it posted into the event queue. This is how benchmarks inject client
/// operations (e.g. a HyperLoop `GroupClient::issue`) into a running
/// cluster.
pub fn drive<R>(sim: &mut Simulation<Cluster>, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
    let now = sim.queue.now();
    let mut out = std::mem::take(&mut sim.model.nic_scratch);
    let mut ctx = NicCtx::new(&mut sim.model.fab, now, &mut out);
    let r = f(&mut ctx);
    for (delay, eff) in out.drain() {
        match eff {
            NicEffect::Internal(ev) => sim.queue.push_after(delay, ClusterEvent::Nic(ev)),
            NicEffect::HostNotify { node, cq } => sim
                .queue
                .push_after(delay, ClusterEvent::HostNotify { node, cq }),
        }
    }
    sim.model.nic_scratch = out;
    r
}
