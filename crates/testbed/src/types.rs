//! Cluster-level events, configuration and the application trait.

use cpusched::{CpuEvent, SchedConfig};
use netsim::{FabricConfig, NodeId};
use rnicsim::{CqId, NicConfig, NicEvent};
use simcore::SimDuration;
use std::any::Any;

/// A handle to an application process registered with the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcRef(pub u32);

/// What a completed CPU task was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A bound completion queue has entries to poll.
    CqReady(CqId),
    /// A timer set by the application fired.
    Timer(u64),
    /// Explicitly charged CPU work finished.
    Work(u64),
}

/// Events delivered to an application handler, always *after* its process
/// was scheduled onto a core (CPU queueing already paid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEvent {
    /// The simulation is starting (time zero).
    Start,
    /// A bound completion queue has entries; poll it.
    CqReady(CqId),
    /// A timer set via [`Env::set_timer`](crate::Env::set_timer) fired.
    Timer(u64),
    /// Work charged via [`Env::submit_work`](crate::Env::submit_work) is done.
    WorkDone(u64),
}

/// An application process: storage server, replica backend, or workload
/// client. Handlers run with the process on-CPU; verbs posted through the
/// [`Env`](crate::Env) take effect at the current instant.
pub trait HostApp: Any {
    /// Reacts to one host event.
    fn on_event(&mut self, env: &mut crate::Env<'_>, event: HostEvent);
}

/// The global simulation event for a [`Cluster`](crate::Cluster).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    /// Kick-off: runs every app's `Start` handler.
    Start,
    /// An RDMA-fabric internal event.
    Nic(NicEvent),
    /// A CPU-scheduler internal event on one node.
    Cpu {
        /// The node whose scheduler the event belongs to.
        node: NodeId,
        /// The scheduler event.
        ev: CpuEvent,
    },
    /// A CPU task finished; dispatch its handler.
    TaskDone {
        /// Cluster-global task id.
        id: u64,
    },
    /// An application timer came due; wake the owning process.
    TimerDue {
        /// The owning process.
        proc: ProcRef,
        /// Token passed back to the handler.
        token: u64,
    },
    /// A host notification raised outside the model loop (by an external
    /// driver posting verbs through [`drive`](crate::cluster::drive)).
    HostNotify {
        /// Node whose CQ fired.
        node: NodeId,
        /// The CQ.
        cq: rnicsim::CqId,
    },
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// NIC model parameters.
    pub nic: NicConfig,
    /// Network fabric parameters.
    pub fabric: FabricConfig,
    /// CPU scheduler parameters.
    pub sched: SchedConfig,
    /// CPU cost charged when a timer callback runs.
    pub timer_handler_cost: SimDuration,
    /// Root seed for all deterministic randomness.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nic: NicConfig::default(),
            fabric: FabricConfig::default(),
            sched: SchedConfig::default(),
            timer_handler_cost: SimDuration::from_micros(1),
            seed: 0x5EED,
        }
    }
}
