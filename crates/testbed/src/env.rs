//! The controlled view of the cluster an application handler works through.

use crate::types::ProcRef;
use netsim::NodeId;
use nvmsim::NvmDevice;
use rnicsim::{CqId, Cqe, NicCtx, NicEffect, QpId, RdmaFabric, RecvWqe, Wqe};
use simcore::{Outbox, SimDuration, SimTime};

/// Actions a handler stages for the cluster to apply after it returns.
#[derive(Debug, Clone, Copy)]
pub enum StagedAction {
    /// Deliver a `Timer(token)` event after `delay` (plus CPU scheduling).
    Timer {
        /// Delay until the timer interrupt.
        delay: SimDuration,
        /// Token passed back to the handler.
        token: u64,
    },
    /// Charge `cost` of CPU to this process, then deliver `WorkDone(token)`.
    Work {
        /// CPU time to burn.
        cost: SimDuration,
        /// Token passed back to the handler.
        token: u64,
    },
}

/// Handler-side API: verbs, memory, timers and CPU-work charging.
///
/// All verb calls take effect at the handler's instant; their latency is
/// modelled inside the fabric. CPU cost of the handler itself is charged by
/// the task that delivered the event (and by [`Env::submit_work`] for bulk
/// work such as log application).
pub struct Env<'a> {
    now: SimTime,
    me: ProcRef,
    fab: &'a mut RdmaFabric,
    nic_out: &'a mut Outbox<NicEffect>,
    staged: &'a mut Vec<StagedAction>,
}

impl<'a> Env<'a> {
    pub(crate) fn new(
        now: SimTime,
        me: ProcRef,
        fab: &'a mut RdmaFabric,
        nic_out: &'a mut Outbox<NicEffect>,
        staged: &'a mut Vec<StagedAction>,
    ) -> Self {
        Env {
            now,
            me,
            fab,
            nic_out,
            staged,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This handler's process handle.
    pub fn me(&self) -> ProcRef {
        self.me
    }

    /// Direct fabric access for setup-style calls not covered below.
    pub fn fabric(&mut self) -> &mut RdmaFabric {
        self.fab
    }

    /// Posts a send-side WQE (see [`RdmaFabric::post_send`]).
    pub fn post_send(&mut self, node: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        self.fab.post_send(self.now, node, qp, wqe, self.nic_out)
    }

    /// Posts a receive-side WQE.
    pub fn post_recv(&mut self, node: NodeId, qp: QpId, recv: RecvWqe) {
        self.fab.post_recv(self.now, node, qp, recv, self.nic_out)
    }

    /// Grants NIC ownership of the next `count` unowned WQEs.
    pub fn grant_next(&mut self, node: NodeId, qp: QpId, count: u32) {
        self.fab.grant_next(self.now, node, qp, count, self.nic_out)
    }

    /// Drains up to `max` completions from a CQ.
    pub fn poll_cq(&mut self, node: NodeId, cq: CqId, max: usize) -> Vec<Cqe> {
        self.fab.poll_cq(node, cq, max)
    }

    /// Like [`Env::poll_cq`], but appends into a caller-owned buffer and
    /// returns the count — the allocation-free completion path.
    pub fn poll_cq_into(
        &mut self,
        node: NodeId,
        cq: CqId,
        max: usize,
        out: &mut Vec<Cqe>,
    ) -> usize {
        self.fab.poll_cq_into(node, cq, max, out)
    }

    /// Host-side memory access on any node this handler legitimately owns
    /// (the model does not stop cross-node access; don't use it for data
    /// paths, only for test instrumentation).
    pub fn mem(&mut self, node: NodeId) -> &mut NvmDevice {
        self.fab.mem(node)
    }

    /// Runs `f` with a bundled [`NicCtx`] — the calling convention of
    /// library data paths (e.g. HyperLoop group clients) that post verbs on
    /// the caller's behalf.
    pub fn with_fabric<R>(&mut self, f: impl FnOnce(&mut NicCtx<'_>) -> R) -> R {
        let mut ctx = NicCtx::new(self.fab, self.now, self.nic_out);
        f(&mut ctx)
    }

    /// Schedules a `Timer(token)` callback after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.staged.push(StagedAction::Timer { delay, token });
    }

    /// Charges `cost` of CPU to this process; `WorkDone(token)` fires when
    /// the work has actually executed (including scheduling delays).
    pub fn submit_work(&mut self, cost: SimDuration, token: u64) {
        self.staged.push(StagedAction::Work { cost, token });
    }
}
