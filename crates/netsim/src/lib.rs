//! # netsim — the data-center fabric under the RDMA NICs
//!
//! A deliberately simple model matching what the HyperLoop evaluation needs:
//! every pair of nodes is connected through a lossless fabric
//! (InfiniBand-like, 56 Gbps in the paper's testbed) with
//!
//! * fixed propagation delay (switching + cabling),
//! * transmission delay proportional to message size,
//! * small multiplicative jitter, and
//! * **in-order delivery per directed node pair** — RDMA reliable
//!   connections (RC queue pairs) require this, and the WAIT-chaining trick
//!   at the heart of HyperLoop depends on it.
//!
//! ```
//! use netsim::{Network, FabricConfig, NodeId};
//! use simcore::{SimRng, SimTime};
//!
//! let mut net = Network::new(4, FabricConfig::default());
//! let mut rng = SimRng::new(7);
//! let t0 = SimTime::ZERO;
//! let a = net.deliver_at(NodeId(0), NodeId(1), 1024, t0, &mut rng);
//! let b = net.deliver_at(NodeId(0), NodeId(1), 64, t0, &mut rng);
//! assert!(b >= a, "same-pair messages stay ordered");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simcore::simtrace::{TraceKind, NO_OP};
use simcore::{MetricsRegistry, SimDuration, SimRng, SimTime, Tracer};
use std::collections::HashMap;
use std::fmt;

/// Identifies a machine on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Fabric-wide timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Link bandwidth in bits per second (56 Gbps ConnectX-3 by default).
    pub bandwidth_bps: u64,
    /// One-way propagation + switching delay.
    pub propagation: SimDuration,
    /// Multiplicative jitter: each delay is scaled by `1 + U(0, jitter)`.
    pub jitter: f64,
    /// Per-message fixed overhead (headers, framing).
    pub per_message_overhead: SimDuration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            bandwidth_bps: 56_000_000_000,
            propagation: SimDuration::from_nanos(900),
            jitter: 0.05,
            per_message_overhead: SimDuration::from_nanos(100),
        }
    }
}

impl FabricConfig {
    /// Time to serialize `bytes` onto the wire at the configured bandwidth.
    pub fn transmission(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * 8 * 1_000_000_000 / self.bandwidth_bps)
    }

    /// Base one-way latency for a message of `bytes` (before jitter).
    pub fn base_latency(&self, bytes: u64) -> SimDuration {
        self.propagation + self.per_message_overhead + self.transmission(bytes)
    }
}

/// Per-directed-pair traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages carried.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

/// The fabric: computes delivery times and enforces per-pair FIFO order.
#[derive(Debug)]
pub struct Network {
    nodes: u32,
    config: FabricConfig,
    /// When each node's egress port finishes its current transmission.
    egress_free: Vec<SimTime>,
    /// When each node's ingress port finishes its current reception.
    ingress_free: Vec<SimTime>,
    /// Latest delivery time so far on each directed pair (FIFO clamp).
    channel_clock: HashMap<(NodeId, NodeId), SimTime>,
    stats: HashMap<(NodeId, NodeId), LinkStats>,
    tracer: Tracer,
}

impl Network {
    /// A fabric connecting `nodes` machines.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u32, config: FabricConfig) -> Self {
        assert!(nodes > 0, "network must have at least one node");
        Network {
            nodes,
            config,
            egress_free: vec![SimTime::ZERO; nodes as usize],
            ingress_free: vec![SimTime::ZERO; nodes as usize],
            channel_clock: HashMap::new(),
            stats: HashMap::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a trace sink; link enqueue/deliver events will be emitted.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of machines on the fabric.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Computes when a message of `bytes` sent at `now` from `src` arrives at
    /// `dst`. Each node's egress and ingress ports serialize transmissions
    /// (one frame at a time at line rate), which is what bounds throughput —
    /// per node, not per pair — and delivery per directed pair is FIFO,
    /// which RDMA reliable connections require. Loopback (src == dst) costs
    /// only the per-message overhead.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn deliver_at(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        self.deliver_at_traced(src, dst, bytes, now, rng, NO_OP)
    }

    /// [`Network::deliver_at`] with a causal op id attached to the emitted
    /// trace events, so link time shows up in per-op span trees.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn deliver_at_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        rng: &mut SimRng,
        op: u64,
    ) -> SimTime {
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        let st = self.stats.entry((src, dst)).or_default();
        st.messages += 1;
        st.bytes += bytes;
        self.tracer.emit(
            now,
            src.0,
            op,
            TraceKind::LinkEnqueue {
                src: src.0,
                dst: dst.0,
                bytes,
            },
        );

        if src == dst {
            let arrival = now + self.config.per_message_overhead;
            self.tracer.emit(
                arrival,
                dst.0,
                op,
                TraceKind::LinkDeliver {
                    src: src.0,
                    dst: dst.0,
                },
            );
            return arrival;
        }

        // Serialize on both ports: a NIC transmits at most one frame at a
        // time (egress) and a receiver drains at most line rate (ingress).
        let start_tx = now
            .max(self.egress_free[src.0 as usize])
            .max(self.ingress_free[dst.0 as usize]);
        let finish_tx = start_tx + self.config.transmission(bytes);
        self.egress_free[src.0 as usize] = finish_tx;
        self.ingress_free[dst.0 as usize] = finish_tx;

        let tail = self.config.propagation + self.config.per_message_overhead;
        let jitter = 1.0 + rng.next_f64() * self.config.jitter;
        let arrival = finish_tx + tail.mul_f64(jitter);

        // FIFO per directed pair: never deliver before an earlier message.
        let clock = self
            .channel_clock
            .entry((src, dst))
            .or_insert(SimTime::ZERO);
        let ordered = arrival.max(*clock + SimDuration::from_nanos(1));
        *clock = ordered;
        self.tracer.emit(
            ordered,
            dst.0,
            op,
            TraceKind::LinkDeliver {
                src: src.0,
                dst: dst.0,
            },
        );
        ordered
    }

    /// Traffic carried on a directed pair so far.
    pub fn link_stats(&self, src: NodeId, dst: NodeId) -> LinkStats {
        self.stats.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Total bytes carried across the whole fabric.
    pub fn total_bytes(&self) -> u64 {
        self.stats.values().map(|s| s.bytes).sum()
    }

    /// Snapshots link statistics into a [`MetricsRegistry`] under `prefix`:
    /// fabric-wide totals plus per-directed-pair message/byte counters.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let mut pairs: Vec<_> = self.stats.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        let mut messages = 0;
        let mut bytes = 0;
        for ((src, dst), st) in pairs {
            messages += st.messages;
            bytes += st.bytes;
            reg.counter_set(&format!("{prefix}.link.{src}_{dst}.messages"), st.messages);
            reg.counter_set(&format!("{prefix}.link.{src}_{dst}.bytes"), st.bytes);
        }
        reg.counter_set(&format!("{prefix}.messages"), messages);
        reg.counter_set(&format!("{prefix}.bytes"), bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, SimRng) {
        (Network::new(4, FabricConfig::default()), SimRng::new(1))
    }

    #[test]
    fn latency_grows_with_size() {
        let (mut net, mut rng) = net();
        let small = net.deliver_at(NodeId(0), NodeId(1), 64, SimTime::ZERO, &mut rng);
        let mut net2 = Network::new(4, FabricConfig::default());
        let large = net2.deliver_at(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO, &mut rng);
        assert!(large > small);
        // 1 MiB at 56 Gbps is ~150 us of transmission alone.
        assert!(large.since(SimTime::ZERO) > SimDuration::from_micros(100));
    }

    #[test]
    fn transmission_math() {
        let cfg = FabricConfig::default();
        // 56 Gbps = 7 bytes/ns -> 7000 bytes take 1000 ns.
        assert_eq!(cfg.transmission(7000).as_nanos(), 1000);
        assert_eq!(cfg.transmission(0).as_nanos(), 0);
    }

    #[test]
    fn per_pair_fifo_order() {
        let (mut net, mut rng) = net();
        let mut last = SimTime::ZERO;
        for i in 0..100u64 {
            // Decreasing sizes would reorder without the FIFO clamp.
            let bytes = 10_000 - i * 100;
            let t = net.deliver_at(NodeId(2), NodeId(3), bytes, SimTime::ZERO, &mut rng);
            assert!(t > last, "message {i} delivered out of order");
            last = t;
        }
    }

    #[test]
    fn disjoint_node_pairs_are_independent() {
        let (mut net, mut rng) = net();
        let t1 = net.deliver_at(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO, &mut rng);
        let t2 = net.deliver_at(NodeId(2), NodeId(3), 64, SimTime::ZERO, &mut rng);
        assert!(t2 < t1, "disjoint pair should not be delayed");
    }

    #[test]
    fn shared_egress_port_serializes() {
        // One sender to two receivers: the sender's port is the bottleneck.
        let (mut net, mut rng) = net();
        let t1 = net.deliver_at(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO, &mut rng);
        let t2 = net.deliver_at(NodeId(0), NodeId(2), 64, SimTime::ZERO, &mut rng);
        assert!(
            t2 > t1 - FabricConfig::default().base_latency(64).mul_f64(2.0),
            "second transmission must wait for the shared egress port"
        );
    }

    #[test]
    fn shared_ingress_port_serializes() {
        // Two senders to one receiver: the receiver's port is the bottleneck.
        let cfg = FabricConfig::default();
        let (mut net, mut rng) = net();
        let a = net.deliver_at(NodeId(0), NodeId(3), 1 << 20, SimTime::ZERO, &mut rng);
        let b = net.deliver_at(NodeId(1), NodeId(3), 1 << 20, SimTime::ZERO, &mut rng);
        let tx = cfg.transmission(1 << 20);
        assert!(
            b.since(SimTime::ZERO) >= tx * 2,
            "ingress did not serialize"
        );
        assert!(a < b);
    }

    #[test]
    fn loopback_is_cheap() {
        let (mut net, mut rng) = net();
        let t = net.deliver_at(NodeId(1), NodeId(1), 1 << 20, SimTime::ZERO, &mut rng);
        assert_eq!(
            t.since(SimTime::ZERO),
            FabricConfig::default().per_message_overhead
        );
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, mut rng) = net();
        net.deliver_at(NodeId(0), NodeId(1), 100, SimTime::ZERO, &mut rng);
        net.deliver_at(NodeId(0), NodeId(1), 200, SimTime::ZERO, &mut rng);
        net.deliver_at(NodeId(1), NodeId(0), 50, SimTime::ZERO, &mut rng);
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).messages, 2);
        assert_eq!(net.link_stats(NodeId(0), NodeId(1)).bytes, 300);
        assert_eq!(net.link_stats(NodeId(1), NodeId(0)).bytes, 50);
        assert_eq!(net.total_bytes(), 350);
    }

    #[test]
    fn jitter_stays_bounded() {
        let cfg = FabricConfig::default();
        let mut rng = SimRng::new(42);
        let base = cfg.base_latency(512);
        for _ in 0..1000 {
            let mut fresh = Network::new(2, cfg);
            let t = fresh.deliver_at(NodeId(0), NodeId(1), 512, SimTime::ZERO, &mut rng);
            let d = t.since(SimTime::ZERO);
            assert!(d >= base, "delay below base");
            assert!(d <= base.mul_f64(1.0 + cfg.jitter) + SimDuration::from_nanos(1));
        }
    }

    #[test]
    fn link_serializes_back_to_back_messages() {
        let cfg = FabricConfig::default();
        let (mut net, mut rng) = (Network::new(2, cfg), SimRng::new(3));
        let n = 100u64;
        let bytes = 70_000; // 10 us of transmission each at 56 Gbps
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = net.deliver_at(NodeId(0), NodeId(1), bytes, SimTime::ZERO, &mut rng);
        }
        let total = last.since(SimTime::ZERO);
        let pure_tx = cfg.transmission(bytes) * n;
        assert!(
            total >= pure_tx,
            "link did not serialize: {total} < {pure_tx}"
        );
        // And no more than ~10% overhead beyond serialization + tail.
        assert!(total <= pure_tx.mul_f64(1.1) + SimDuration::from_micros(2));
    }

    #[test]
    fn reverse_direction_does_not_serialize_with_forward() {
        let cfg = FabricConfig::default();
        let (mut net, mut rng) = (Network::new(2, cfg), SimRng::new(4));
        net.deliver_at(NodeId(0), NodeId(1), 1 << 20, SimTime::ZERO, &mut rng);
        let back = net.deliver_at(NodeId(1), NodeId(0), 64, SimTime::ZERO, &mut rng);
        assert!(
            back.since(SimTime::ZERO) < SimDuration::from_micros(5),
            "full duplex violated"
        );
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_node_panics() {
        let (mut net, mut rng) = net();
        net.deliver_at(NodeId(0), NodeId(9), 1, SimTime::ZERO, &mut rng);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;

    fn gen_msgs(seed: u64, nodes: u32, max_bytes: u64, n_max: usize) -> Vec<(u32, u32, u64, u64)> {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.gen_index(n_max - 1);
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..nodes as u64) as u32,
                    rng.gen_range(0..nodes as u64) as u32,
                    rng.gen_range(1..max_bytes),
                    rng.gen_range(0..10_000),
                )
            })
            .collect()
    }

    /// Conservation law: no node can source or sink traffic faster than
    /// its port rate, whatever the traffic pattern.
    #[test]
    fn port_capacity_is_never_exceeded() {
        for case in 0..48u64 {
            let cfg = FabricConfig::default();
            let mut net = Network::new(4, cfg);
            let mut rng = SimRng::new(11);
            let mut last = SimTime::ZERO;
            let mut tx_bytes = [0u64; 4];
            let mut rx_bytes = [0u64; 4];
            for (s, d, bytes, _) in gen_msgs(0x0CEA + case, 4, 100_000, 100) {
                let (src, dst) = (NodeId(s), NodeId(d));
                let t = net.deliver_at(src, dst, bytes, SimTime::ZERO, &mut rng);
                last = last.max(t);
                if s != d {
                    tx_bytes[s as usize] += bytes;
                    rx_bytes[d as usize] += bytes;
                }
            }
            let window = last.as_secs_f64().max(1e-12);
            for n in 0..4 {
                let tx_bps = tx_bytes[n] as f64 * 8.0 / window;
                let rx_bps = rx_bytes[n] as f64 * 8.0 / window;
                assert!(
                    tx_bps <= cfg.bandwidth_bps as f64 * 1.001,
                    "node {n} egress over line rate: {tx_bps:.2e}"
                );
                assert!(
                    rx_bps <= cfg.bandwidth_bps as f64 * 1.001,
                    "node {n} ingress over line rate: {rx_bps:.2e}"
                );
            }
        }
    }

    /// FIFO per directed pair holds under arbitrary interleavings.
    #[test]
    fn per_pair_fifo_always() {
        for case in 0..48u64 {
            let mut net = Network::new(3, FabricConfig::default());
            let mut rng = SimRng::new(13);
            let mut pair_last: std::collections::HashMap<(u32, u32), SimTime> =
                std::collections::HashMap::new();
            let mut now = SimTime::ZERO;
            for (s, d, bytes, gap) in gen_msgs(0xF1F0 + case, 3, 50_000, 120) {
                now += SimDuration::from_nanos(gap);
                let t = net.deliver_at(NodeId(s), NodeId(d), bytes, now, &mut rng);
                if let Some(&prev) = pair_last.get(&(s, d)) {
                    assert!(t > prev, "pair ({s},{d}) reordered");
                }
                pair_last.insert((s, d), t);
            }
        }
    }
}
