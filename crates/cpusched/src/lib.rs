//! # cpusched — the multi-tenant CPU that HyperLoop removes from the critical path
//!
//! HyperLoop's motivation (paper §2.2) is that in multi-tenant storage
//! servers, hundreds of replica processes share a handful of cores, so the
//! CPU work on a replicated transaction's critical path — receiving the log,
//! running the commit protocol, applying updates, taking locks — waits behind
//! scheduling delay and context switches. This crate models exactly that
//! machine:
//!
//! * [`CpuScheduler`] — per-core run queues, fixed time slices, a per-switch
//!   cost and a wake-up latency;
//! * [`ProcKind::EventDriven`] processes that sleep and pay a wake-up;
//! * [`ProcKind::Polling`] processes that spin (the paper's
//!   Naïve-Polling baseline) — fast when they own a core, poison under
//!   co-location;
//! * bursty background tenants ([`CpuScheduler::spawn_hog`]) standing in for
//!   the paper's co-located instances and `stress-ng` load.
//!
//! Work is submitted as tasks with a CPU cost; completion is reported with
//! exact virtual-time timestamps, so end-to-end experiments see true
//! queueing + context-switch delays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheduler;
pub mod types;

pub use scheduler::CpuScheduler;
pub use types::{
    CoreId, CpuEffect, CpuEvent, HogProfile, ProcId, ProcKind, SchedConfig, SchedStats, TaskId,
};

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::*;

    /// Test harness: routes scheduler effects through a real event queue.
    struct Harness {
        sched: CpuScheduler,
        done: Vec<(SimTime, ProcId, TaskId)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Cpu(CpuEvent),
        Done(ProcId, TaskId),
    }

    impl Harness {
        fn new(cores: u32, config: SchedConfig) -> Simulation<Harness> {
            Simulation::new(Harness {
                sched: CpuScheduler::new(cores, config, SimRng::new(42)),
                done: Vec::new(),
            })
        }

        fn route(out: &mut Outbox<CpuEffect>, q: &mut EventQueue<Ev>) {
            for (delay, eff) in out.drain() {
                match eff {
                    CpuEffect::Internal(ev) => q.push_after(delay, Ev::Cpu(ev)),
                    CpuEffect::TaskDone { proc, task } => q.push_after(delay, Ev::Done(proc, task)),
                }
            }
        }
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Cpu(cpu) => {
                    let mut out = Outbox::new();
                    self.sched.handle(now, cpu, &mut out);
                    Self::route(&mut out, q);
                }
                Ev::Done(p, t) => self.done.push((now, p, t)),
            }
        }
    }

    /// Submits a task through the harness at the current queue time.
    fn submit(sim: &mut Simulation<Harness>, p: ProcId, t: u64, cost: SimDuration) {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        sim.model
            .sched
            .submit(p, TaskId(t), cost, simcore::simtrace::NO_OP, now, &mut out);
        Harness::route(&mut out, &mut sim.queue);
    }

    fn spawn(sim: &mut Simulation<Harness>, kind: ProcKind) -> ProcId {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        let p = sim.model.sched.spawn(kind, now, &mut out);
        Harness::route(&mut out, &mut sim.queue);
        p
    }

    #[test]
    fn event_driven_idle_machine_latency() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(4, cfg);
        let p = spawn(&mut sim, ProcKind::EventDriven);
        submit(&mut sim, p, 1, SimDuration::from_micros(10));
        sim.run();
        let (t, _, _) = sim.model.done[0];
        // wake (5us) + context switch (3us) + work (10us)
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(18));
    }

    #[test]
    fn polling_process_picks_up_fast() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(4, cfg);
        let p = spawn(&mut sim, ProcKind::Polling);
        // Let the poller take its core first.
        sim.run_until(SimTime::from_micros(100));
        let submit_at = sim.queue.now();
        submit(&mut sim, p, 1, SimDuration::from_micros(10));
        sim.run_until(SimTime::from_millis(10));
        let (t, _, _) = sim.model.done[0];
        // At most pickup (1us) + initial context switch (3us) + work (10us);
        // crucially there is no 5us wake latency and no queueing.
        let lat = t.since(submit_at);
        assert!(lat >= SimDuration::from_micros(10), "{lat}");
        assert!(lat <= SimDuration::from_micros(14), "{lat}");
    }

    #[test]
    fn contention_delays_event_driven_wakeup() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        // Three pollers occupy the single core in round-robin.
        for _ in 0..3 {
            spawn(&mut sim, ProcKind::Polling);
        }
        let p = spawn(&mut sim, ProcKind::EventDriven);
        sim.run_until(SimTime::from_millis(20));
        let submit_at = sim.queue.now();
        submit(&mut sim, p, 7, SimDuration::from_micros(10));
        sim.run_until(SimTime::from_millis(60));
        let (t, _, _) = sim.model.done[0];
        let lat = t.since(submit_at);
        // Must wait for the current slice plus queued pollers: >= 1 slice.
        assert!(
            lat >= SimDuration::from_millis(1),
            "no queueing delay under contention: {lat}"
        );
        assert!(
            lat <= SimDuration::from_millis(5),
            "unreasonably long: {lat}"
        );
    }

    #[test]
    fn multiple_tasks_one_wakeup() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(2, cfg);
        let p = spawn(&mut sim, ProcKind::EventDriven);
        for i in 0..5 {
            submit(&mut sim, p, i, SimDuration::from_micros(2));
        }
        sim.run();
        assert_eq!(sim.model.done.len(), 5);
        assert_eq!(
            sim.model.sched.stats().wakeups,
            1,
            "one interrupt, not five"
        );
        // All five ran back-to-back within one slice.
        let last = sim.model.done.last().unwrap().0;
        assert_eq!(
            last.since(SimTime::ZERO),
            SimDuration::from_micros(5 + 3 + 10)
        );
    }

    #[test]
    fn long_task_spans_multiple_slices() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        let a = spawn(&mut sim, ProcKind::EventDriven);
        let b = spawn(&mut sim, ProcKind::EventDriven);
        submit(&mut sim, a, 1, SimDuration::from_millis(3)); // 3 slices of work
        submit(&mut sim, b, 2, SimDuration::from_micros(10));
        sim.run();
        assert_eq!(sim.model.done.len(), 2);
        let done_a = sim.model.done.iter().find(|(_, p, _)| *p == a).unwrap().0;
        let done_b = sim.model.done.iter().find(|(_, p, _)| *p == b).unwrap().0;
        // b finishes long before a despite arriving later (time slicing).
        assert!(done_b < done_a);
        assert!(done_a.since(SimTime::ZERO) >= SimDuration::from_millis(3));
    }

    #[test]
    fn back_to_back_submissions_to_running_process() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(2, cfg);
        let p = spawn(&mut sim, ProcKind::EventDriven);
        submit(&mut sim, p, 1, SimDuration::from_micros(100));
        // While it runs, feed it another task.
        sim.run_until(SimTime::from_micros(50));
        submit(&mut sim, p, 2, SimDuration::from_micros(10));
        sim.run();
        assert_eq!(sim.model.done.len(), 2);
        assert_eq!(
            sim.model.sched.stats().wakeups,
            1,
            "pickup must not re-wake"
        );
        let t2 = sim.model.done.iter().find(|(_, _, t)| t.0 == 2).unwrap().0;
        // First task ends at 5+3+100=108us; second runs right after.
        assert_eq!(t2.since(SimTime::ZERO), SimDuration::from_micros(118));
    }

    #[test]
    fn context_switches_are_counted() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        for _ in 0..4 {
            spawn(&mut sim, ProcKind::Polling);
        }
        sim.run_until(SimTime::from_millis(100));
        let cs = sim.model.sched.stats().context_switches;
        // Four pollers on one core switch roughly every slice.
        assert!(cs >= 90, "too few context switches: {cs}");
    }

    #[test]
    fn single_poller_does_not_context_switch() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        spawn(&mut sim, ProcKind::Polling);
        sim.run_until(SimTime::from_millis(100));
        // Re-dispatching the same process costs nothing after the first switch.
        assert_eq!(sim.model.sched.stats().context_switches, 1);
    }

    #[test]
    fn polling_burns_cpu_without_useful_work() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        let p = spawn(&mut sim, ProcKind::Polling);
        sim.run_until(SimTime::from_millis(50));
        let stats = sim.model.sched.stats();
        assert!(
            stats.busy >= SimDuration::from_millis(49),
            "poller should burn the core"
        );
        assert_eq!(stats.useful, SimDuration::ZERO);
        assert_eq!(sim.model.sched.proc_useful(p), SimDuration::ZERO);
    }

    #[test]
    fn event_driven_idle_machine_is_idle() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(2, cfg);
        spawn(&mut sim, ProcKind::EventDriven);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.model.sched.stats().busy, SimDuration::ZERO);
    }

    #[test]
    fn hogs_create_bursty_contention() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        let mut out = Outbox::new();
        for _ in 0..8 {
            sim.model
                .sched
                .spawn_hog(HogProfile::default(), SimTime::ZERO, &mut out);
        }
        Harness::route(&mut out, &mut sim.queue);
        sim.run_until(SimTime::from_secs(1));
        let stats = sim.model.sched.stats();
        // 8 hogs at ~25% duty on one core: busy but not zero-idle forever.
        let busy_frac = stats.busy.as_secs_f64() / 1.0;
        assert!(busy_frac > 0.5, "hogs too idle: {busy_frac}");
        assert!(stats.context_switches > 100, "hogs never alternated");
    }

    #[test]
    fn latency_tail_grows_with_colocation() {
        // The crate's raison d'être: same request stream, more co-located
        // tenants, higher p99.
        let mut tails = Vec::new();
        for tenants in [0u32, 12] {
            let cfg = SchedConfig::default();
            let mut sim = Harness::new(2, cfg);
            let mut out = Outbox::new();
            for _ in 0..tenants {
                sim.model
                    .sched
                    .spawn_hog(HogProfile::default(), SimTime::ZERO, &mut out);
            }
            Harness::route(&mut out, &mut sim.queue);
            let p = spawn(&mut sim, ProcKind::EventDriven);

            let mut hist = Histogram::new();
            let mut next = SimTime::from_millis(10);
            for i in 0..300 {
                sim.run_until(next);
                let submit_at = sim.queue.now();
                submit(&mut sim, p, i, SimDuration::from_micros(5));
                sim.run_until(next + SimDuration::from_millis(9));
                if let Some((t, _, _)) = sim.model.done.iter().find(|(_, _, tid)| tid.0 == i) {
                    hist.record(t.since(submit_at));
                }
                next += SimDuration::from_millis(10);
            }
            assert!(hist.count() >= 290, "lost completions: {}", hist.count());
            tails.push(hist.p99());
        }
        assert!(
            tails[1] > tails[0] * 5,
            "co-location did not inflate the tail: {} vs {}",
            tails[1],
            tails[0]
        );
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        let p = spawn(&mut sim, ProcKind::EventDriven);
        submit(&mut sim, p, 1, SimDuration::from_micros(10));
        sim.run();
        assert!(sim.model.sched.stats().tasks_completed > 0);
        sim.model.sched.reset_stats();
        let s = sim.model.sched.stats();
        assert_eq!(s.tasks_completed, 0);
        assert_eq!(s.busy, SimDuration::ZERO);
        assert_eq!(sim.model.sched.core_busy(CoreId(0)), SimDuration::ZERO);
    }

    #[test]
    fn backlog_reports_queued_tasks() {
        let cfg = SchedConfig::default();
        let mut sim = Harness::new(1, cfg);
        let p = spawn(&mut sim, ProcKind::EventDriven);
        for i in 0..3 {
            submit(&mut sim, p, i, SimDuration::from_millis(5));
        }
        assert_eq!(sim.model.sched.proc_backlog(p), 3);
        sim.run();
        assert_eq!(sim.model.sched.proc_backlog(p), 0);
    }

    #[test]
    #[should_panic(expected = "use spawn_hog")]
    fn spawning_hog_via_spawn_panics() {
        let mut sim = Harness::new(1, SchedConfig::default());
        spawn(&mut sim, ProcKind::Hog);
    }

    mod randomized {
        use super::*;
        use simcore::SimRng;

        #[test]
        fn every_task_completes_no_earlier_than_cost() {
            for case in 0..32u64 {
                let mut rng = SimRng::new(0x5C4ED + case);
                let cores = rng.gen_range(1..4) as u32;
                let n_procs = 1 + rng.gen_index(5);
                let cfg = SchedConfig::default();
                let mut sim = Harness::new(cores, cfg);
                let procs: Vec<ProcId> = (0..n_procs)
                    .map(|i| {
                        let kind = if i % 2 == 0 {
                            ProcKind::EventDriven
                        } else {
                            ProcKind::Polling
                        };
                        spawn(&mut sim, kind)
                    })
                    .collect();
                let n_tasks = 1 + rng.gen_index(39);
                let mut expect = Vec::new();
                for i in 0..n_tasks {
                    let p = procs[rng.gen_index(procs.len())];
                    let cost = SimDuration::from_micros(rng.gen_range(1..500));
                    submit(&mut sim, p, i as u64, cost);
                    expect.push((i as u64, cost));
                }
                sim.run_until(SimTime::from_secs(5));
                assert_eq!(sim.model.done.len(), expect.len(), "lost tasks");
                for (tid, cost) in expect {
                    let (t, _, _) = sim.model.done.iter().find(|(_, _, x)| x.0 == tid).unwrap();
                    assert!(
                        t.since(SimTime::ZERO) >= cost,
                        "finished faster than its cost"
                    );
                }
            }
        }

        #[test]
        fn useful_time_equals_total_cost() {
            for case in 0..32u64 {
                let mut rng = SimRng::new(0x05EF + case);
                let cfg = SchedConfig::default();
                let mut sim = Harness::new(2, cfg);
                let p = spawn(&mut sim, ProcKind::EventDriven);
                let mut total = SimDuration::ZERO;
                let n = 1 + rng.gen_index(29);
                for i in 0..n {
                    let cost = SimDuration::from_micros(rng.gen_range(1..200));
                    total += cost;
                    submit(&mut sim, p, i as u64, cost);
                }
                sim.run_until(SimTime::from_secs(5));
                assert_eq!(sim.model.sched.stats().useful, total);
            }
        }
    }
}
