//! The multi-core round-robin scheduler.
//!
//! The model is intentionally CFS-flavoured rather than CFS-exact: per-core
//! FIFO run queues, a fixed time slice, a per-switch cost, and a wake-up
//! latency. That is the minimal mechanism that produces the phenomenon the
//! HyperLoop paper builds on — *a blocked replica process waits for a CPU in
//! proportion to how many other runnable processes share the machine*, with
//! heavy-tailed waits when background tenants burst.

use crate::types::{
    CoreId, CpuEffect, CpuEvent, HogProfile, ProcId, ProcKind, SchedConfig, SchedStats, TaskId,
};
use simcore::{Outbox, SimDuration, SimRng, SimTime, TraceKind, Tracer};
use std::collections::VecDeque;

#[derive(Debug)]
struct Task {
    id: TaskId,
    remaining: SimDuration,
    /// Causal operation this task serves (`NO_OP` when none): the `wr_id`
    /// of the completion that woke the process, threaded into
    /// dispatch/preempt trace events so scheduling delays tile into the
    /// op's latency breakdown.
    op: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Blocked,
    Waking,
    Queued(CoreId),
    Running(CoreId),
}

#[derive(Debug)]
struct Process {
    kind: ProcKind,
    state: ProcState,
    tasks: VecDeque<Task>,
    hog_on: bool,
    hog_profile: HogProfile,
    useful: SimDuration,
    busy: SimDuration,
}

#[derive(Debug)]
struct ActiveSlice {
    proc: ProcId,
    seq: u64,
    generation: u32,
    dispatched_at: SimTime,
    /// First instant of task execution (after the context switch).
    work_start: SimTime,
    /// Absolute cap: `work_start + time_slice`.
    hard_end: SimTime,
    /// Horizon of committed task work (completion events already emitted).
    busy_until: SimTime,
    /// When the currently scheduled `SliceEnd` will fire.
    yield_at: SimTime,
}

#[derive(Debug, Default)]
struct Core {
    queue: VecDeque<ProcId>,
    running: Option<ActiveSlice>,
    last_proc: Option<ProcId>,
    busy: SimDuration,
}

/// One server's CPU complex: cores, run queues and tenant processes.
///
/// Drive it by calling [`CpuScheduler::submit`] when work arrives and
/// routing every [`CpuEffect::Internal`] effect back into
/// [`CpuScheduler::handle`] after its delay.
#[derive(Debug)]
pub struct CpuScheduler {
    config: SchedConfig,
    cores: Vec<Core>,
    procs: Vec<Process>,
    slice_seq: u64,
    stats: SchedStats,
    rng: SimRng,
    tracer: Tracer,
    trace_node: u32,
}

impl CpuScheduler {
    /// Creates a scheduler with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: u32, config: SchedConfig, rng: SimRng) -> Self {
        assert!(cores > 0, "server needs at least one core");
        CpuScheduler {
            config,
            cores: (0..cores).map(|_| Core::default()).collect(),
            procs: Vec::new(),
            slice_seq: 0,
            stats: SchedStats::default(),
            rng,
            tracer: Tracer::disabled(),
            trace_node: simcore::simtrace::NO_NODE,
        }
    }

    /// Installs a trace sink; dispatch/preempt events will be attributed to
    /// `node` (the server this scheduler belongs to).
    pub fn set_tracer(&mut self, tracer: Tracer, node: u32) {
        self.tracer = tracer;
        self.trace_node = node;
    }

    /// Number of cores.
    pub fn core_count(&self) -> u32 {
        self.cores.len() as u32
    }

    /// Number of processes.
    pub fn proc_count(&self) -> u32 {
        self.procs.len() as u32
    }

    /// Tasks waiting on run queues right now, summed across all cores
    /// (excludes the tasks currently running). A point-in-time depth for
    /// counter-track sampling.
    pub fn runqueue_len(&self) -> usize {
        self.cores.iter().map(|c| c.queue.len()).sum()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Resets all counters (e.g. after warm-up) without touching scheduling
    /// state.
    pub fn reset_stats(&mut self) {
        self.stats = SchedStats::default();
        for core in &mut self.cores {
            core.busy = SimDuration::ZERO;
        }
        for proc in &mut self.procs {
            proc.useful = SimDuration::ZERO;
            proc.busy = SimDuration::ZERO;
        }
    }

    /// Core-occupancy time of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_busy(&self, core: CoreId) -> SimDuration {
        self.cores[core.0 as usize].busy
    }

    /// Time `proc` has spent executing submitted tasks.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn proc_useful(&self, proc: ProcId) -> SimDuration {
        self.procs[proc.0 as usize].useful
    }

    /// Core-occupancy time of `proc` (includes context switches and, for
    /// polling processes, idle spinning — what `top` would attribute to it).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn proc_busy(&self, proc: ProcId) -> SimDuration {
        self.procs[proc.0 as usize].busy
    }

    /// Number of tasks queued (not yet finished) for `proc`.
    pub fn proc_backlog(&self, proc: ProcId) -> usize {
        self.procs[proc.0 as usize].tasks.len()
    }

    /// Creates an event-driven or polling process. Polling processes enter a
    /// run queue immediately and start burning their slices.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ProcKind::Hog`]; use [`CpuScheduler::spawn_hog`].
    pub fn spawn(&mut self, kind: ProcKind, now: SimTime, out: &mut Outbox<CpuEffect>) -> ProcId {
        assert!(
            kind != ProcKind::Hog,
            "use spawn_hog for background tenants"
        );
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Process {
            kind,
            state: ProcState::Blocked,
            tasks: VecDeque::new(),
            hog_on: false,
            hog_profile: HogProfile::default(),
            useful: SimDuration::ZERO,
            busy: SimDuration::ZERO,
        });
        if kind == ProcKind::Polling {
            self.make_runnable(id, now, out);
        }
        id
    }

    /// Creates a bursty background tenant with the given duty profile. Its
    /// first busy burst begins after a random fraction of an idle period, so
    /// a fleet of hogs starts out of phase.
    pub fn spawn_hog(
        &mut self,
        profile: HogProfile,
        _now: SimTime,
        out: &mut Outbox<CpuEffect>,
    ) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(Process {
            kind: ProcKind::Hog,
            state: ProcState::Blocked,
            tasks: VecDeque::new(),
            hog_on: false,
            hog_profile: profile,
            useful: SimDuration::ZERO,
            busy: SimDuration::ZERO,
        });
        let phase = SimDuration::from_secs_f64(
            self.rng.next_f64() * profile.idle_mean.as_secs_f64().max(1e-9),
        );
        out.emit(phase, CpuEffect::Internal(CpuEvent::HogToggle { proc: id }));
        id
    }

    /// Submits `cost` worth of CPU work to `proc`; a
    /// [`CpuEffect::TaskDone`] effect fires when it finishes executing.
    /// `op` is the causal operation the work serves (the waking CQE's
    /// `wr_id`), or [`simcore::simtrace::NO_OP`] for op-less work such as
    /// timers.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn submit(
        &mut self,
        proc: ProcId,
        task: TaskId,
        cost: SimDuration,
        op: u64,
        now: SimTime,
        out: &mut Outbox<CpuEffect>,
    ) {
        self.procs[proc.0 as usize].tasks.push_back(Task {
            id: task,
            remaining: cost,
            op,
        });
        match self.procs[proc.0 as usize].state {
            ProcState::Blocked => {
                // An interrupt wakes the sleeping process.
                self.procs[proc.0 as usize].state = ProcState::Waking;
                self.stats.wakeups += 1;
                out.emit(
                    self.config.wake_latency,
                    CpuEffect::Internal(CpuEvent::Wake { proc }),
                );
            }
            ProcState::Waking | ProcState::Queued(_) => {} // will run later
            ProcState::Running(core) => self.pickup_while_running(core, proc, now, out),
        }
    }

    /// Routes a previously emitted internal event back into the machine.
    pub fn handle(&mut self, now: SimTime, event: CpuEvent, out: &mut Outbox<CpuEffect>) {
        let _t = simcore::hostprof::scope("cpusched.dispatch");
        match event {
            CpuEvent::Wake { proc } => {
                if self.procs[proc.0 as usize].state == ProcState::Waking {
                    self.make_runnable(proc, now, out);
                }
            }
            CpuEvent::SliceEnd {
                core,
                seq,
                generation,
            } => self.on_slice_end(core, seq, generation, now, out),
            CpuEvent::HogToggle { proc } => self.on_hog_toggle(proc, now, out),
        }
    }

    // ---- internals -------------------------------------------------------

    fn least_loaded_core(&self) -> CoreId {
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for (i, core) in self.cores.iter().enumerate() {
            let load = core.queue.len() + usize::from(core.running.is_some());
            if load < best_load {
                best_load = load;
                best = i;
            }
        }
        CoreId(best as u32)
    }

    fn make_runnable(&mut self, proc: ProcId, now: SimTime, out: &mut Outbox<CpuEffect>) {
        let core = self.least_loaded_core();
        self.procs[proc.0 as usize].state = ProcState::Queued(core);
        self.cores[core.0 as usize].queue.push_back(proc);
        self.dispatch(core, now, out);
    }

    fn dispatch(&mut self, core_id: CoreId, now: SimTime, out: &mut Outbox<CpuEffect>) {
        loop {
            let core = &mut self.cores[core_id.0 as usize];
            if core.running.is_some() {
                return;
            }
            let Some(pid) = core.queue.pop_front() else {
                return;
            };
            let proc = &mut self.procs[pid.0 as usize];

            // Lazily drop hogs that went idle while queued.
            if proc.kind == ProcKind::Hog && !proc.hog_on && proc.tasks.is_empty() {
                proc.state = ProcState::Blocked;
                continue;
            }

            let cs = if core.last_proc == Some(pid) {
                SimDuration::ZERO
            } else {
                self.stats.context_switches += 1;
                self.config.context_switch_cost
            };
            self.slice_seq += 1;
            let work_start = now + cs;
            let hard_end = work_start + self.config.time_slice;
            let mut slice = ActiveSlice {
                proc: pid,
                seq: self.slice_seq,
                generation: 0,
                dispatched_at: now,
                work_start,
                hard_end,
                busy_until: work_start,
                yield_at: hard_end,
            };
            proc.state = ProcState::Running(core_id);

            let floor = slice.work_start;
            Self::commit_tasks(&mut slice, proc, floor, now, &mut self.stats, out);

            slice.yield_at = match proc.kind {
                // Pollers and hogs burn the whole slice even when idle.
                ProcKind::Polling | ProcKind::Hog => slice.hard_end,
                // Event-driven processes yield once out of work.
                ProcKind::EventDriven => slice.busy_until,
            };
            out.emit(
                slice.yield_at.since(now),
                CpuEffect::Internal(CpuEvent::SliceEnd {
                    core: core_id,
                    seq: slice.seq,
                    generation: slice.generation,
                }),
            );
            let op = self.procs[pid.0 as usize]
                .tasks
                .front()
                .map_or(simcore::simtrace::NO_OP, |t| t.op);
            self.cores[core_id.0 as usize].running = Some(slice);
            self.tracer.emit(
                now,
                self.trace_node,
                op,
                TraceKind::Dispatch { task: pid.0 as u64 },
            );
            return;
        }
    }

    /// Commits as much queued task work as fits before `slice.hard_end`,
    /// starting no earlier than `floor`, emitting exact completion times.
    fn commit_tasks(
        slice: &mut ActiveSlice,
        proc: &mut Process,
        floor: SimTime,
        now: SimTime,
        stats: &mut SchedStats,
        out: &mut Outbox<CpuEffect>,
    ) {
        let mut cursor = slice.busy_until.max(floor);
        let mut committed = false;
        let pid = slice.proc;
        while let Some(front) = proc.tasks.front_mut() {
            if cursor >= slice.hard_end {
                break;
            }
            let avail = slice.hard_end.since(cursor);
            let run = front.remaining.min(avail);
            front.remaining -= run;
            cursor += run;
            proc.useful += run;
            stats.useful += run;
            committed = true;
            if front.remaining.is_zero() {
                let task = proc.tasks.pop_front().expect("front task vanished");
                stats.tasks_completed += 1;
                out.emit(
                    cursor.since(now),
                    CpuEffect::TaskDone {
                        proc: pid,
                        task: task.id,
                    },
                );
            } else {
                break; // partial task: slice exhausted
            }
        }
        if committed {
            slice.busy_until = cursor;
        }
    }

    /// A task arrived for a process that currently holds a core: it notices
    /// within `intra_slice_pickup` and keeps working inside its slice.
    fn pickup_while_running(
        &mut self,
        core_id: CoreId,
        pid: ProcId,
        now: SimTime,
        out: &mut Outbox<CpuEffect>,
    ) {
        let core = &mut self.cores[core_id.0 as usize];
        let Some(slice) = core.running.as_mut() else {
            return;
        };
        debug_assert_eq!(slice.proc, pid, "running-state/core-slice mismatch");
        let proc = &mut self.procs[pid.0 as usize];
        let floor = now + self.config.intra_slice_pickup;
        Self::commit_tasks(slice, proc, floor, now, &mut self.stats, out);

        // An event-driven slice may have been about to yield early; extend it.
        if proc.kind == ProcKind::EventDriven && slice.busy_until > slice.yield_at {
            slice.generation += 1;
            slice.yield_at = slice.busy_until;
            out.emit(
                slice.yield_at.since(now),
                CpuEffect::Internal(CpuEvent::SliceEnd {
                    core: core_id,
                    seq: slice.seq,
                    generation: slice.generation,
                }),
            );
        }
    }

    fn on_slice_end(
        &mut self,
        core_id: CoreId,
        seq: u64,
        generation: u32,
        now: SimTime,
        out: &mut Outbox<CpuEffect>,
    ) {
        let core = &mut self.cores[core_id.0 as usize];
        let valid = core
            .running
            .as_ref()
            .is_some_and(|s| s.seq == seq && s.generation == generation);
        if !valid {
            return; // stale end (slice extended or already finished)
        }
        let slice = core.running.take().expect("validated slice vanished");
        let pid = slice.proc;
        let occupancy = now.since(slice.dispatched_at);
        core.busy += occupancy;
        self.stats.busy += occupancy;
        core.last_proc = Some(pid);
        self.procs[pid.0 as usize].busy += occupancy;

        let proc = &mut self.procs[pid.0 as usize];
        let wants_cpu = match proc.kind {
            ProcKind::EventDriven => !proc.tasks.is_empty(),
            ProcKind::Polling => true,
            ProcKind::Hog => proc.hog_on || !proc.tasks.is_empty(),
        };
        if wants_cpu {
            let op = proc
                .tasks
                .front()
                .map_or(simcore::simtrace::NO_OP, |t| t.op);
            proc.state = ProcState::Queued(core_id);
            self.cores[core_id.0 as usize].queue.push_back(pid);
            self.tracer.emit(
                now,
                self.trace_node,
                op,
                TraceKind::Preempt { task: pid.0 as u64 },
            );
        } else {
            proc.state = ProcState::Blocked;
        }
        self.dispatch(core_id, now, out);
    }

    fn on_hog_toggle(&mut self, pid: ProcId, now: SimTime, out: &mut Outbox<CpuEffect>) {
        let proc = &mut self.procs[pid.0 as usize];
        debug_assert_eq!(proc.kind, ProcKind::Hog, "toggle on non-hog");
        proc.hog_on = !proc.hog_on;
        let mean = if proc.hog_on {
            proc.hog_profile.busy_mean
        } else {
            proc.hog_profile.idle_mean
        };
        let next = SimDuration::from_secs_f64(self.rng.exponential(mean.as_secs_f64().max(1e-9)));
        out.emit(next, CpuEffect::Internal(CpuEvent::HogToggle { proc: pid }));

        if self.procs[pid.0 as usize].hog_on
            && self.procs[pid.0 as usize].state == ProcState::Blocked
        {
            self.make_runnable(pid, now, out);
        }
        // Turning off is lazy: the hog blocks at its next slice end or is
        // skipped at dispatch.
    }
}
