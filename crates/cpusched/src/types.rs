//! Identifiers, configuration and process kinds for the CPU model.

use simcore::SimDuration;
use std::fmt;

/// Identifies a process (one tenant replica, client thread, or background
/// job) on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// Identifies a physical core on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Opaque handle the embedder uses to recognize a finished unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// How a process obtains CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcKind {
    /// Sleeps when it has no work; woken by an interrupt/eventfd when a task
    /// arrives (paying [`SchedConfig::wake_latency`]).
    EventDriven,
    /// Spins on its completion queue: always runnable, burns whole time
    /// slices even when idle, but picks newly arrived work up within
    /// [`SchedConfig::intra_slice_pickup`] when it holds the CPU.
    Polling,
    /// A background tenant: alternates exponentially distributed busy bursts
    /// (infinite work) and idle periods. Generates the multi-tenant
    /// contention of the paper's testbed.
    Hog,
}

/// Parameters of the bursty background ("hog") processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HogProfile {
    /// Mean length of a busy burst.
    pub busy_mean: SimDuration,
    /// Mean length of an idle gap.
    pub idle_mean: SimDuration,
}

impl Default for HogProfile {
    fn default() -> Self {
        // ~25% duty cycle: bursty enough to pile up run queues occasionally
        // (tail) without saturating the machine permanently (average).
        HogProfile {
            busy_mean: SimDuration::from_millis(5),
            idle_mean: SimDuration::from_millis(15),
        }
    }
}

/// Scheduler timing parameters (Linux-CFS-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Round-robin time slice.
    pub time_slice: SimDuration,
    /// Cost of switching the core to a different process (register/TLB/cache
    /// state; the paper's Figure 2 blames exactly this).
    pub context_switch_cost: SimDuration,
    /// Interrupt + scheduler latency from task arrival to a blocked process
    /// becoming runnable.
    pub wake_latency: SimDuration,
    /// How quickly a *running* process notices newly arrived work
    /// (poll-loop iteration / epoll check).
    pub intra_slice_pickup: SimDuration,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            time_slice: SimDuration::from_millis(1),
            context_switch_cost: SimDuration::from_micros(3),
            wake_latency: SimDuration::from_micros(5),
            intra_slice_pickup: SimDuration::from_micros(1),
        }
    }
}

/// Internal self-events of the scheduler; the embedder schedules these on
/// its global queue and routes them back into
/// [`CpuScheduler::handle`](crate::CpuScheduler::handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEvent {
    /// A blocked process finishes waking.
    Wake {
        /// The process that was being woken.
        proc: ProcId,
    },
    /// The slice identified by `(core, seq, gen)` reaches its scheduled end.
    SliceEnd {
        /// Core whose slice ends.
        core: CoreId,
        /// Slice identity (stale events are ignored).
        seq: u64,
        /// End-reschedule generation (extensions invalidate older ends).
        generation: u32,
    },
    /// A hog process flips between busy and idle.
    HogToggle {
        /// The hog process.
        proc: ProcId,
    },
}

/// Effects the scheduler hands back to the embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEffect {
    /// Schedule this internal event after the attached delay.
    Internal(CpuEvent),
    /// A submitted task has finished executing on a core.
    TaskDone {
        /// The owning process.
        proc: ProcId,
        /// The task handle given at submission.
        task: TaskId,
    },
}

/// Cumulative scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Number of process switches on any core.
    pub context_switches: u64,
    /// Number of wake-ups of blocked processes.
    pub wakeups: u64,
    /// Number of tasks completed.
    pub tasks_completed: u64,
    /// Total core-occupancy time (includes poll-idle burn).
    pub busy: SimDuration,
    /// Total time spent executing submitted tasks.
    pub useful: SimDuration,
}

impl SchedStats {
    /// Snapshots every counter into `reg` under a dotted `prefix`. Durations
    /// are exported as nanosecond counters.
    pub fn export_into(&self, reg: &mut simcore::MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.context_switches"), self.context_switches);
        reg.counter_set(&format!("{prefix}.wakeups"), self.wakeups);
        reg.counter_set(&format!("{prefix}.tasks_completed"), self.tasks_completed);
        reg.counter_set(&format!("{prefix}.busy_ns"), self.busy.as_nanos());
        reg.counter_set(&format!("{prefix}.useful_ns"), self.useful.as_nanos());
    }
}
