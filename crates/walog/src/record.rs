//! Redo-log records.
//!
//! Following the paper (§5, "Log Replication"): *"Each log record is a
//! redo-log and structured as a list of modifications to the database. Each
//! entry in the list contains a 3-tuple of (data, len, offset) representing
//! that data of length len is to be copied at offset in the database."*
//!
//! The wire format is self-delimiting and CRC-protected so a recovery scan
//! can stop at the first torn record:
//!
//! ```text
//! +-------+--------+---------+-------------+-------+----------------------+
//! | magic | tx_id  | n_entry | payload_len | crc32 | entries...           |
//! | u32   | u64    | u32     | u32         | u32   |                      |
//! +-------+--------+---------+-------------+-------+----------------------+
//! entry := offset u64 | len u32 | data [len bytes]
//! ```

use std::fmt;

/// Record magic ("WALR").
pub const MAGIC: u32 = 0x5741_4C52;

/// Fixed header size in bytes.
pub const HEADER_SIZE: usize = 4 + 8 + 4 + 4 + 4;

/// One modification: copy `data` to `offset` in the database region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Destination offset in the database region.
    pub offset: u64,
    /// Bytes to place there.
    pub data: Vec<u8>,
}

/// One transaction's redo record: a list of modifications applied atomically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Transaction identifier (monotone per log).
    pub tx_id: u64,
    /// The modifications.
    pub entries: Vec<LogEntry>,
}

/// Why decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a header, or payload shorter than declared.
    Truncated,
    /// Magic mismatch: not a record boundary (or zeroed space).
    BadMagic,
    /// CRC mismatch: torn or corrupted record.
    BadChecksum,
    /// Entry lengths inconsistent with the declared payload length.
    Malformed,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DecodeError::Truncated => "record truncated",
            DecodeError::BadMagic => "bad record magic",
            DecodeError::BadChecksum => "checksum mismatch",
            DecodeError::Malformed => "malformed entry list",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// CRC-32 (IEEE 802.3), bitwise implementation; plenty fast for simulation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl LogRecord {
    /// A record with a single entry.
    pub fn single(tx_id: u64, offset: u64, data: Vec<u8>) -> Self {
        LogRecord {
            tx_id,
            entries: vec![LogEntry { offset, data }],
        }
    }

    /// Total bytes this record occupies on the log.
    pub fn encoded_len(&self) -> usize {
        HEADER_SIZE
            + self
                .entries
                .iter()
                .map(|e| 12 + e.data.len())
                .sum::<usize>()
    }

    /// Sum of entry data lengths (the real payload being replicated).
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Byte offset, within the encoded record, of each entry's `data` field.
    /// Lets a replicated-log layer point a `gMEMCPY` at an entry's bytes
    /// without re-encoding.
    pub fn entry_data_offsets(&self) -> Vec<u64> {
        let mut pos = HEADER_SIZE as u64;
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            pos += 12;
            out.push(pos);
            pos += e.data.len() as u64;
        }
        out
    }

    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.encoded_len() - HEADER_SIZE);
        for e in &self.entries {
            payload.extend_from_slice(&e.offset.to_le_bytes());
            payload.extend_from_slice(&(e.data.len() as u32).to_le_bytes());
            payload.extend_from_slice(&e.data);
        }
        let mut buf = Vec::with_capacity(HEADER_SIZE + payload.len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.tx_id.to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf
    }

    /// Parses one record from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffer does not start with a whole,
    /// well-formed, checksum-valid record.
    pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
        if buf.len() < HEADER_SIZE {
            return Err(DecodeError::Truncated);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let tx_id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let n_entries = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let payload_len = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        if buf.len() < HEADER_SIZE + payload_len {
            return Err(DecodeError::Truncated);
        }
        let payload = &buf[HEADER_SIZE..HEADER_SIZE + payload_len];
        if crc32(payload) != crc {
            return Err(DecodeError::BadChecksum);
        }
        let mut entries = Vec::with_capacity(n_entries);
        let mut pos = 0usize;
        for _ in 0..n_entries {
            if payload.len() < pos + 12 {
                return Err(DecodeError::Malformed);
            }
            let offset = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
            let len = u32::from_le_bytes(payload[pos + 8..pos + 12].try_into().unwrap()) as usize;
            pos += 12;
            if payload.len() < pos + len {
                return Err(DecodeError::Malformed);
            }
            entries.push(LogEntry {
                offset,
                data: payload[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        if pos != payload.len() {
            return Err(DecodeError::Malformed);
        }
        Ok((LogRecord { tx_id, entries }, HEADER_SIZE + payload_len))
    }
}

/// Scans `buf` for consecutive valid records from the front, stopping at the
/// first invalid one (the recovery pass).
pub fn scan(buf: &[u8]) -> Vec<LogRecord> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        match LogRecord::decode(&buf[pos..]) {
            Ok((rec, used)) => {
                out.push(rec);
                pos += used;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            tx_id: 42,
            entries: vec![
                LogEntry {
                    offset: 100,
                    data: b"hello".to_vec(),
                },
                LogEntry {
                    offset: 7000,
                    data: vec![1, 2, 3],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let rec = sample();
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.encoded_len());
        let (back, used) = LogRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn decode_with_trailing_garbage() {
        let mut bytes = sample().encode();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0xAB; 40]);
        let (back, used) = LogRecord::decode(&bytes).unwrap();
        assert_eq!(back, sample());
        assert_eq!(used, clean_len);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        for cut in [0, 5, HEADER_SIZE - 1, HEADER_SIZE + 3, bytes.len() - 1] {
            assert_eq!(
                LogRecord::decode(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload bit
        assert_eq!(
            LogRecord::decode(&bytes).unwrap_err(),
            DecodeError::BadChecksum
        );
    }

    #[test]
    fn zeroed_space_is_bad_magic() {
        let zeros = vec![0u8; 64];
        assert_eq!(
            LogRecord::decode(&zeros).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn scan_stops_at_first_invalid() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            buf.extend_from_slice(&LogRecord::single(i, i * 8, vec![i as u8; 16]).encode());
        }
        let cut = buf.len() - 3; // tear the last record
        let records = scan(&buf[..cut]);
        assert_eq!(records.len(), 4);
        assert_eq!(records[3].tx_id, 3);
    }

    #[test]
    fn scan_of_empty_region() {
        assert!(scan(&[]).is_empty());
        assert!(scan(&[0u8; 256]).is_empty());
    }

    #[test]
    fn entry_data_offsets_point_at_the_data() {
        let rec = sample();
        let bytes = rec.encode();
        let offs = rec.entry_data_offsets();
        assert_eq!(offs.len(), 2);
        for (o, e) in offs.iter().zip(&rec.entries) {
            assert_eq!(&bytes[*o as usize..*o as usize + e.data.len()], &e.data[..]);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_record_round_trips() {
        let rec = LogRecord {
            tx_id: 0,
            entries: vec![],
        };
        let bytes = rec.encode();
        let (back, _) = LogRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    mod randomized {
        use super::*;

        /// Minimal deterministic PRNG (splitmix64): this crate has no
        /// dependencies, so the tests carry their own generator.
        struct TestRng(u64);

        impl TestRng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }

        fn gen_record(rng: &mut TestRng) -> LogRecord {
            let n_entries = rng.next() as usize % 8;
            LogRecord {
                tx_id: rng.next(),
                entries: (0..n_entries)
                    .map(|_| LogEntry {
                        offset: rng.next(),
                        data: (0..rng.next() as usize % 64)
                            .map(|_| rng.next() as u8)
                            .collect(),
                    })
                    .collect(),
            }
        }

        #[test]
        fn any_record_round_trips() {
            let mut rng = TestRng(0x4EC0);
            for _ in 0..128 {
                let rec = gen_record(&mut rng);
                let bytes = rec.encode();
                assert_eq!(bytes.len(), rec.encoded_len());
                let (back, used) = LogRecord::decode(&bytes).unwrap();
                assert_eq!(back, rec);
                assert_eq!(used, bytes.len());
            }
        }

        #[test]
        fn any_single_bitflip_is_detected() {
            let mut rng = TestRng(0xF11B);
            for _ in 0..128 {
                let rec = gen_record(&mut rng);
                let mut bytes = rec.encode();
                let i = rng.next() as usize % bytes.len();
                bytes[i] ^= 0x01;
                // Either an error, or (if tx_id/offset bits flipped but CRC
                // still matches — impossible for payload, possible only in
                // unprotected header fields) a different record.
                match LogRecord::decode(&bytes) {
                    Err(_) => {}
                    Ok((back, _)) => assert_ne!(back, rec),
                }
            }
        }

        #[test]
        fn scan_recovers_full_prefix() {
            let mut rng = TestRng(0x5CA4);
            for _ in 0..64 {
                let n_recs = 1 + rng.next() as usize % 9;
                let recs: Vec<LogRecord> = (0..n_recs).map(|_| gen_record(&mut rng)).collect();
                let cut_tail = rng.next() as usize % 20;
                let mut buf = Vec::new();
                let mut sizes = Vec::new();
                for r in &recs {
                    let b = r.encode();
                    sizes.push(b.len());
                    buf.extend_from_slice(&b);
                }
                let cut = buf.len().saturating_sub(cut_tail);
                let scanned = scan(&buf[..cut]);
                // Whole records before the cut must all be recovered.
                let mut whole = 0;
                let mut acc = 0;
                for s in &sizes {
                    if acc + s <= cut {
                        whole += 1;
                        acc += s;
                    } else {
                        break;
                    }
                }
                assert_eq!(scanned.len(), whole);
                for (a, b) in scanned.iter().zip(&recs) {
                    assert_eq!(a, b);
                }
            }
        }
    }
}
