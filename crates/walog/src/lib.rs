//! # walog — the write-ahead log substrate
//!
//! HyperLoop's storage applications (paper §5) structure every transaction
//! as a redo record — a list of `(data, len, offset)` modifications — that
//! is first replicated into each replica's write-ahead log region (gWRITE +
//! gFLUSH) and later applied to the database region (gMEMCPY + gFLUSH),
//! after which the head pointer advances (gWRITE + gFLUSH).
//!
//! This crate provides the storage-format half of that story, independent of
//! any transport:
//!
//! * [`LogRecord`] / [`LogEntry`] — the redo-record wire format, CRC-checked
//!   and self-delimiting;
//! * [`scan`] — the recovery pass that replays every whole record and stops
//!   at the first torn one;
//! * [`WalRing`] — head/tail placement bookkeeping for a log living in a
//!   fixed NVM region, keeping records contiguous for one-shot RDMA writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod ring;

pub use record::{crc32, scan, DecodeError, LogEntry, LogRecord, HEADER_SIZE, MAGIC};
pub use ring::{Placement, WalRing};
