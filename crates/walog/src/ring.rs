//! Placement bookkeeping for a write-ahead log living in a fixed region.
//!
//! The log is a ring: `head` is the oldest unapplied byte (advanced by log
//! processing/truncation, the paper's `ExecuteAndAdvance`), `tail` is the
//! append point. Both are *logical* monotone counters; physical placement is
//! `base + counter % capacity`. Records never wrap across the region end —
//! when one would, the remainder of the lap is skipped (callers learn this
//! from [`Placement::skipped`]) so each record stays contiguous for RDMA.

/// Where an appended record landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Physical byte offset (relative to the region base).
    pub offset: u64,
    /// Logical tail position of the record start.
    pub logical: u64,
    /// Bytes of end-of-region padding skipped before this record.
    pub skipped: u64,
}

/// Head/tail bookkeeping for a ring-structured WAL region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRing {
    capacity: u64,
    head: u64,
    tail: u64,
}

impl WalRing {
    /// A ring over `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "empty WAL region");
        WalRing {
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Region capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Logical head (oldest unapplied byte).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Logical tail (next append position).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Bytes currently occupied (including any skipped padding).
    pub fn used(&self) -> u64 {
        self.tail - self.head
    }

    /// Bytes available for appending.
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Physical offset of the head.
    pub fn head_offset(&self) -> u64 {
        self.head % self.capacity
    }

    /// Reserves space for a record of `len` bytes, keeping it contiguous.
    /// Returns `None` if the ring is too full (caller must truncate first).
    ///
    /// # Panics
    ///
    /// Panics if a single record exceeds the region capacity.
    pub fn reserve(&mut self, len: u64) -> Option<Placement> {
        assert!(len <= self.capacity, "record larger than the WAL region");
        if len == 0 {
            return Some(Placement {
                offset: self.tail % self.capacity,
                logical: self.tail,
                skipped: 0,
            });
        }
        let pos = self.tail % self.capacity;
        // Skip the end-of-region stub if the record would wrap.
        let skipped = if pos + len > self.capacity {
            self.capacity - pos
        } else {
            0
        };
        if self.used() + skipped + len > self.capacity {
            return None;
        }
        self.tail += skipped;
        let placement = Placement {
            offset: self.tail % self.capacity,
            logical: self.tail,
            skipped,
        };
        self.tail += len;
        Some(placement)
    }

    /// Advances the head past `len` consumed bytes (after applying records).
    ///
    /// # Panics
    ///
    /// Panics if advancing past the tail.
    pub fn advance_head(&mut self, len: u64) {
        assert!(self.head + len <= self.tail, "head overtaking tail");
        self.head += len;
    }

    /// Advances the head to an absolute logical position (e.g. a placement's
    /// `logical + record_len`), swallowing any skipped padding.
    ///
    /// # Panics
    ///
    /// Panics if moving backwards or past the tail.
    pub fn advance_head_to(&mut self, logical: u64) {
        assert!(logical >= self.head, "head moving backwards");
        assert!(logical <= self.tail, "head overtaking tail");
        self.head = logical;
    }

    /// Empties the ring (e.g. after a checkpoint makes the log obsolete).
    pub fn truncate_all(&mut self) {
        self.head = self.tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_appends_advance_tail() {
        let mut r = WalRing::new(1024);
        let a = r.reserve(100).unwrap();
        let b = r.reserve(200).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 100);
        assert_eq!(r.used(), 300);
        assert_eq!(r.free(), 724);
    }

    #[test]
    fn wrap_keeps_records_contiguous() {
        let mut r = WalRing::new(1000);
        r.reserve(900).unwrap();
        r.advance_head(900); // all applied
        let p = r.reserve(200).unwrap();
        assert_eq!(p.skipped, 100, "end stub skipped");
        assert_eq!(p.offset, 0, "record starts at region base");
        assert!(p.offset + 200 <= 1000);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = WalRing::new(256);
        assert!(r.reserve(200).is_some());
        assert!(r.reserve(100).is_none(), "would overflow");
        r.advance_head(200);
        assert!(r.reserve(100).is_some(), "space reclaimed");
    }

    #[test]
    fn wrap_plus_full_interaction() {
        let mut r = WalRing::new(100);
        r.reserve(80).unwrap();
        r.advance_head(50);
        // 30 used; a 40-byte record needs 20 skip + 40 = 60 more, total 90 > 100 free? used=30, skip=20, len=40 => 90 <= 100: fits.
        let p = r.reserve(40).unwrap();
        assert_eq!(p.skipped, 20);
        assert_eq!(p.offset, 0);
        // Now used = 90; another 40 (no skip, pos=40) would make 130 > 100.
        assert!(r.reserve(40).is_none());
    }

    #[test]
    fn advance_head_to_swallows_padding() {
        let mut r = WalRing::new(100);
        r.reserve(90).unwrap();
        r.advance_head(90);
        let p = r.reserve(30).unwrap();
        assert_eq!(p.skipped, 10);
        r.advance_head_to(p.logical + 30);
        assert_eq!(r.used(), 0);
    }

    #[test]
    #[should_panic(expected = "head overtaking tail")]
    fn head_cannot_pass_tail() {
        let mut r = WalRing::new(64);
        r.reserve(10).unwrap();
        r.advance_head(11);
    }

    #[test]
    #[should_panic(expected = "record larger")]
    fn oversized_record_panics() {
        let mut r = WalRing::new(64);
        r.reserve(65);
    }

    #[test]
    fn truncate_all_empties() {
        let mut r = WalRing::new(64);
        r.reserve(30).unwrap();
        r.truncate_all();
        assert_eq!(r.used(), 0);
        assert_eq!(r.head(), r.tail());
    }

    mod randomized {
        use super::*;

        /// Minimal deterministic PRNG (splitmix64): this crate has no
        /// dependencies, so the tests carry their own generator.
        struct TestRng(u64);

        impl TestRng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn range(&mut self, lo: u64, hi: u64) -> u64 {
                lo + self.next() % (hi - lo)
            }
        }

        #[test]
        fn placements_never_overlap_live_data() {
            for case in 0..64u64 {
                let mut rng = TestRng(0x4A11 + case);
                let n = 1 + (rng.next() as usize % 199);
                let mut r = WalRing::new(512);
                // Live intervals as logical ranges; physical non-overlap holds
                // because the ring never lets used() exceed capacity.
                let mut live: Vec<(u64, u64)> = Vec::new();
                for _ in 0..n {
                    let len = rng.range(1, 120);
                    if rng.next() % 2 == 1 {
                        if let Some((l, rec_len)) = live.first().copied() {
                            r.advance_head_to(l + rec_len);
                            live.remove(0);
                            // Padding before the next record is swallowed by
                            // the next advance_head_to; emulate by snapping to
                            // the next record's start.
                            if let Some(&(next, _)) = live.first() {
                                r.advance_head_to(next);
                            } else {
                                r.advance_head_to(r.tail());
                            }
                        }
                    } else if let Some(p) = r.reserve(len) {
                        // Record fits inside the region bounds.
                        assert!(p.offset + len <= r.capacity());
                        live.push((p.logical, len));
                    }
                    assert!(r.used() <= r.capacity());
                    assert!(r.head() <= r.tail());
                }
            }
        }
    }
}
