//! # ycsb — the Yahoo! Cloud Serving Benchmark workload generator
//!
//! Implements the standard core workloads the paper evaluates with
//! (Table 3):
//!
//! | Workload | Read | Update | Insert | Read-modify-write | Scan | Request distribution |
//! |---|---|---|---|---|---|---|
//! | A | 50% | 50% | – | – | – | scrambled zipfian |
//! | B | 95% | 5%  | – | – | – | scrambled zipfian |
//! | C | 100% | –  | – | – | – | scrambled zipfian |
//! | D | 95% | –   | 5% | – | – | latest |
//! | E | –   | –   | 5% | – | 95% | scrambled zipfian + uniform scan length |
//! | F | 50% | –   | – | 50% | – | scrambled zipfian |
//!
//! Keys are 32-byte strings derived from a u64 index; values are 1024-byte
//! payloads (the paper's record shape). The generator is deterministic
//! given a seed.
//!
//! Beyond the core set, [`Workload::Transfer`] (50% read / 50% two-key
//! transfer between distinct zipfian accounts) exercises multi-key
//! transactions: each [`Operation::Transfer`] must move value between two
//! keys atomically, potentially across shards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simcore::dist::{KeyChooser, Latest, ScrambledZipfian, UniformKeys};
use simcore::SimRng;
use std::fmt;

/// Key length in bytes (paper: 32-byte keys).
pub const KEY_LEN: usize = 32;

/// Default value length in bytes (paper: 1024-byte values).
pub const VALUE_LEN: usize = 1024;

/// Maximum scan length for workload E.
pub const MAX_SCAN_LEN: u64 = 100;

/// One generated database operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Point read of a key.
    Read {
        /// Key index.
        key: u64,
    },
    /// Overwrite the value of an existing key.
    Update {
        /// Key index.
        key: u64,
        /// New value.
        value: Vec<u8>,
    },
    /// Insert a fresh key (extends the keyspace).
    Insert {
        /// The newly allocated key index.
        key: u64,
        /// Value.
        value: Vec<u8>,
    },
    /// Read a key then write it back modified (workload F).
    ReadModifyWrite {
        /// Key index.
        key: u64,
        /// Replacement value.
        value: Vec<u8>,
    },
    /// Range scan starting at a key (workload E).
    Scan {
        /// Starting key index.
        key: u64,
        /// Number of records to scan.
        len: u64,
    },
    /// Atomically move `amount` between two accounts (the multi-key
    /// transfer workload). The two keys are distinct and may live on
    /// different shards — serving this correctly requires a multi-key
    /// transaction.
    Transfer {
        /// Debited key index.
        from: u64,
        /// Credited key index.
        to: u64,
        /// Units moved.
        amount: u64,
    },
}

impl Operation {
    /// The operation's key.
    pub fn key(&self) -> u64 {
        match self {
            Operation::Read { key }
            | Operation::Update { key, .. }
            | Operation::Insert { key, .. }
            | Operation::ReadModifyWrite { key, .. }
            | Operation::Scan { key, .. } => *key,
            Operation::Transfer { from, .. } => *from,
        }
    }

    /// Every key the operation touches (two for transfers, one otherwise).
    pub fn keys(&self) -> Vec<u64> {
        match self {
            Operation::Transfer { from, to, .. } => vec![*from, *to],
            other => vec![other.key()],
        }
    }

    /// True for operations that write (and therefore replicate).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Operation::Update { .. }
                | Operation::Insert { .. }
                | Operation::ReadModifyWrite { .. }
                | Operation::Transfer { .. }
        )
    }

    /// Short label ("read", "update", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Operation::Read { .. } => "read",
            Operation::Update { .. } => "update",
            Operation::Insert { .. } => "insert",
            Operation::ReadModifyWrite { .. } => "rmw",
            Operation::Scan { .. } => "scan",
            Operation::Transfer { .. } => "transfer",
        }
    }
}

/// Which standard workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read / 5% insert, latest.
    D,
    /// 95% scan / 5% insert, zipfian starts.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
    /// 50% read / 50% two-key transfer, zipfian (the multi-key
    /// transaction workload; not part of the standard core set).
    Transfer,
}

impl Workload {
    /// All workloads the paper reports (Figure 12): A, B, D, E, F.
    pub const PAPER_SET: [Workload; 5] = [
        Workload::A,
        Workload::B,
        Workload::D,
        Workload::E,
        Workload::F,
    ];

    /// Operation mix as (read, update, insert, rmw, scan, transfer)
    /// percentages.
    pub fn mix(&self) -> (u32, u32, u32, u32, u32, u32) {
        match self {
            Workload::A => (50, 50, 0, 0, 0, 0),
            Workload::B => (95, 5, 0, 0, 0, 0),
            Workload::C => (100, 0, 0, 0, 0, 0),
            Workload::D => (95, 0, 5, 0, 0, 0),
            Workload::E => (0, 0, 5, 0, 95, 0),
            Workload::F => (50, 0, 0, 50, 0, 0),
            Workload::Transfer => (50, 0, 0, 0, 0, 50),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "YCSB-{self:?}")
    }
}

enum Chooser {
    Zipf(ScrambledZipfian),
    Latest(Latest),
}

impl Chooser {
    fn next(&mut self, rng: &mut SimRng) -> u64 {
        match self {
            Chooser::Zipf(z) => z.next_key(rng),
            Chooser::Latest(l) => l.next_key(rng),
        }
    }

    fn grow(&mut self, n: u64) {
        match self {
            Chooser::Zipf(z) => z.grow(n),
            Chooser::Latest(l) => l.grow(n),
        }
    }
}

/// Deterministic operation stream for one workload.
pub struct Generator {
    workload: Workload,
    rng: SimRng,
    chooser: Chooser,
    scan_len: UniformKeys,
    record_count: u64,
    value_len: usize,
}

impl fmt::Debug for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Generator")
            .field("workload", &self.workload)
            .field("records", &self.record_count)
            .finish()
    }
}

impl Generator {
    /// A generator over `record_count` pre-loaded records.
    ///
    /// # Panics
    ///
    /// Panics if `record_count == 0`.
    pub fn new(workload: Workload, record_count: u64, seed: u64) -> Self {
        Self::with_value_len(workload, record_count, seed, VALUE_LEN)
    }

    /// A generator with a custom value size.
    ///
    /// # Panics
    ///
    /// Panics if `record_count == 0` or `value_len == 0`.
    pub fn with_value_len(
        workload: Workload,
        record_count: u64,
        seed: u64,
        value_len: usize,
    ) -> Self {
        Self::build(workload, record_count, seed, value_len, None)
    }

    /// A generator with an explicit zipfian skew `theta ∈ (0, 1)` — the
    /// contention knob: higher theta concentrates requests on fewer hot
    /// keys. Ignored by workload D (latest distribution).
    ///
    /// # Panics
    ///
    /// Panics if `record_count == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(workload: Workload, record_count: u64, seed: u64, theta: f64) -> Self {
        Self::build(workload, record_count, seed, VALUE_LEN, Some(theta))
    }

    fn build(
        workload: Workload,
        record_count: u64,
        seed: u64,
        value_len: usize,
        theta: Option<f64>,
    ) -> Self {
        assert!(record_count > 0, "empty keyspace");
        assert!(value_len > 0, "empty values");
        let mut rng = SimRng::new(seed);
        let chooser = match (workload, theta) {
            (Workload::D, _) => Chooser::Latest(Latest::new(record_count)),
            (_, Some(t)) => Chooser::Zipf(ScrambledZipfian::with_theta(record_count, t)),
            (_, None) => Chooser::Zipf(ScrambledZipfian::new(record_count)),
        };
        assert!(
            workload != Workload::Transfer || record_count > 1,
            "transfers need at least two keys"
        );
        let scan_len = UniformKeys::new(MAX_SCAN_LEN);
        let _ = &mut rng;
        Generator {
            workload,
            rng,
            chooser,
            scan_len,
            record_count,
            value_len,
        }
    }

    /// Current keyspace size (grows with inserts).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn value(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len];
        self.rng.fill_bytes(&mut v);
        v
    }

    fn insert(&mut self) -> Operation {
        let key = self.record_count;
        self.record_count += 1;
        self.chooser.grow(self.record_count);
        let value = self.value();
        Operation::Insert { key, value }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let (read, update, insert, rmw, scan, _transfer) = self.workload.mix();
        let roll = self.rng.gen_range(0..100) as u32;
        if roll < read {
            Operation::Read {
                key: self.chooser.next(&mut self.rng),
            }
        } else if roll < read + update {
            let key = self.chooser.next(&mut self.rng);
            let value = self.value();
            Operation::Update { key, value }
        } else if roll < read + update + insert {
            self.insert()
        } else if roll < read + update + insert + rmw {
            let key = self.chooser.next(&mut self.rng);
            let value = self.value();
            Operation::ReadModifyWrite { key, value }
        } else if roll < read + update + insert + rmw + scan {
            let key = self.chooser.next(&mut self.rng);
            let len = self.scan_len.next_key(&mut self.rng) + 1;
            Operation::Scan { key, len }
        } else {
            // Two *distinct* zipfian accounts: the hot-key skew is what
            // makes the transfer workload contentious.
            let from = self.chooser.next(&mut self.rng);
            let mut to = self.chooser.next(&mut self.rng);
            while to == from {
                to = self.chooser.next(&mut self.rng);
            }
            let amount = self.rng.gen_range(1..100);
            Operation::Transfer { from, to, amount }
        }
    }
}

/// Renders a key index as the fixed-width 32-byte key string YCSB uses
/// (`user` + zero-padded decimal, padded to [`KEY_LEN`]).
pub fn key_bytes(key: u64) -> [u8; KEY_LEN] {
    let mut out = [b'0'; KEY_LEN];
    out[..4].copy_from_slice(b"user");
    let digits = format!("{key:020}");
    out[4..24].copy_from_slice(digits.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn mix_of(workload: Workload, n: usize) -> HashMap<&'static str, usize> {
        let mut g = Generator::new(workload, 10_000, 42);
        let mut counts = HashMap::new();
        for _ in 0..n {
            *counts.entry(g.next_op().kind()).or_insert(0) += 1;
        }
        counts
    }

    fn frac(counts: &HashMap<&str, usize>, k: &str, n: usize) -> f64 {
        *counts.get(k).unwrap_or(&0) as f64 / n as f64
    }

    #[test]
    fn workload_a_mix() {
        let n = 100_000;
        let c = mix_of(Workload::A, n);
        assert!((frac(&c, "read", n) - 0.5).abs() < 0.02);
        assert!((frac(&c, "update", n) - 0.5).abs() < 0.02);
    }

    #[test]
    fn workload_b_mix() {
        let n = 100_000;
        let c = mix_of(Workload::B, n);
        assert!((frac(&c, "read", n) - 0.95).abs() < 0.01);
        assert!((frac(&c, "update", n) - 0.05).abs() < 0.01);
    }

    #[test]
    fn workload_d_mix_and_growth() {
        let n = 100_000;
        let mut g = Generator::new(Workload::D, 10_000, 7);
        let mut inserts = 0;
        for _ in 0..n {
            if matches!(g.next_op(), Operation::Insert { .. }) {
                inserts += 1;
            }
        }
        assert!((inserts as f64 / n as f64 - 0.05).abs() < 0.01);
        assert_eq!(g.record_count(), 10_000 + inserts);
    }

    #[test]
    fn workload_e_scans_dominate() {
        let n = 50_000;
        let c = mix_of(Workload::E, n);
        assert!((frac(&c, "scan", n) - 0.95).abs() < 0.01);
        assert!((frac(&c, "insert", n) - 0.05).abs() < 0.01);
    }

    #[test]
    fn workload_f_has_rmw() {
        let n = 50_000;
        let c = mix_of(Workload::F, n);
        assert!((frac(&c, "read", n) - 0.5).abs() < 0.02);
        assert!((frac(&c, "rmw", n) - 0.5).abs() < 0.02);
    }

    #[test]
    fn scan_lengths_bounded() {
        let mut g = Generator::new(Workload::E, 1000, 9);
        for _ in 0..10_000 {
            if let Operation::Scan { len, .. } = g.next_op() {
                assert!((1..=MAX_SCAN_LEN).contains(&len));
            }
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let mut g = Generator::new(Workload::A, 5_000, 3);
        for _ in 0..50_000 {
            let op = g.next_op();
            assert!(op.key() < g.record_count(), "{op:?}");
        }
    }

    #[test]
    fn workload_a_is_skewed() {
        let mut g = Generator::new(Workload::A, 10_000, 5);
        let mut counts = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(g.next_op().key()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 2_000, "zipfian hot key missing: {max}");
    }

    #[test]
    fn workload_d_prefers_recent_keys() {
        let mut g = Generator::new(Workload::D, 10_000, 11);
        let mut recent = 0usize;
        let mut total = 0usize;
        for _ in 0..50_000 {
            if let Operation::Read { key } = g.next_op() {
                total += 1;
                if key + 100 >= g.record_count() {
                    recent += 1;
                }
            }
        }
        assert!(
            recent as f64 / total as f64 > 0.3,
            "latest distribution not recent-skewed: {recent}/{total}"
        );
    }

    #[test]
    fn determinism() {
        let mut a = Generator::new(Workload::A, 1000, 99);
        let mut b = Generator::new(Workload::A, 1000, 99);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn values_have_requested_length() {
        let mut g = Generator::with_value_len(Workload::A, 100, 1, 256);
        for _ in 0..100 {
            if let Operation::Update { value, .. } = g.next_op() {
                assert_eq!(value.len(), 256);
            }
        }
    }

    #[test]
    fn key_bytes_format() {
        let k = key_bytes(42);
        assert_eq!(&k[..4], b"user");
        assert_eq!(k.len(), KEY_LEN);
        assert!(std::str::from_utf8(&k).is_ok());
        assert_ne!(key_bytes(1), key_bytes(2));
    }

    #[test]
    fn transfer_workload_mix_and_distinct_keys() {
        let n = 50_000;
        let c = mix_of(Workload::Transfer, n);
        assert!((frac(&c, "read", n) - 0.5).abs() < 0.02);
        assert!((frac(&c, "transfer", n) - 0.5).abs() < 0.02);
        let mut g = Generator::new(Workload::Transfer, 100, 17);
        for _ in 0..10_000 {
            if let Operation::Transfer { from, to, amount } = g.next_op() {
                assert_ne!(from, to, "transfer endpoints must differ");
                assert!(from < g.record_count() && to < g.record_count());
                assert!((1..100).contains(&amount));
            }
        }
    }

    #[test]
    fn transfer_reports_both_keys() {
        let op = Operation::Transfer {
            from: 3,
            to: 9,
            amount: 5,
        };
        assert!(op.is_write());
        assert_eq!(op.kind(), "transfer");
        assert_eq!(op.key(), 3);
        assert_eq!(op.keys(), vec![3, 9]);
        assert_eq!(Operation::Read { key: 7 }.keys(), vec![7]);
    }

    #[test]
    fn writes_flagged_correctly() {
        assert!(!Operation::Read { key: 0 }.is_write());
        assert!(Operation::Update {
            key: 0,
            value: vec![]
        }
        .is_write());
        assert!(!Operation::Scan { key: 0, len: 5 }.is_write());
    }
}
