//! The bundled NIC calling context.
//!
//! Every host-side data path in the stack (group clients, WAL drivers,
//! storage stores, benchmark harnesses) used to thread the same triple —
//! `&mut RdmaFabric`, the current [`SimTime`], and an [`Outbox`] of
//! [`NicEffect`]s — through every call. [`NicCtx`] bundles the three into
//! one reborrowable context, so a data-path call is
//! `client.issue(ctx, op)` instead of `client.issue(fab, now, out, op)`.
//!
//! The fields stay public: code that needs the raw fabric (memory probes,
//! setup-time allocation) reaches through `ctx.fab` directly.

use crate::fabric::RdmaFabric;
use crate::types::{CqId, Cqe, NicEffect, QpId, RecvWqe, Wqe};
use netsim::NodeId;
use nvmsim::NvmDevice;
use simcore::{Outbox, SimTime};

/// The `(fabric, now, outbox)` triple every verb-posting call needs.
#[derive(Debug)]
pub struct NicCtx<'a> {
    /// The RDMA fabric (NICs, host memories, network).
    pub fab: &'a mut RdmaFabric,
    /// The current simulation instant.
    pub now: SimTime,
    /// Sink for effects the fabric emits (internal events, host notifies).
    pub out: &'a mut Outbox<NicEffect>,
}

impl<'a> NicCtx<'a> {
    /// Bundles a fabric borrow, an instant and an effect sink.
    pub fn new(fab: &'a mut RdmaFabric, now: SimTime, out: &'a mut Outbox<NicEffect>) -> Self {
        NicCtx { fab, now, out }
    }

    /// Reborrows the context for a nested call that needs ownership of a
    /// `NicCtx` value rather than a `&mut` to this one.
    pub fn reborrow(&mut self) -> NicCtx<'_> {
        NicCtx {
            fab: self.fab,
            now: self.now,
            out: self.out,
        }
    }

    /// Posts a send-side WQE at the context instant
    /// (see [`RdmaFabric::post_send`]).
    pub fn post_send(&mut self, node: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        self.fab.post_send(self.now, node, qp, wqe, self.out)
    }

    /// Posts a receive-side WQE (see [`RdmaFabric::post_recv`]).
    pub fn post_recv(&mut self, node: NodeId, qp: QpId, recv: RecvWqe) {
        self.fab.post_recv(self.now, node, qp, recv, self.out)
    }

    /// Grants NIC ownership of the next `count` unowned WQEs
    /// (see [`RdmaFabric::grant_next`]).
    pub fn grant_next(&mut self, node: NodeId, qp: QpId, count: u32) {
        self.fab.grant_next(self.now, node, qp, count, self.out)
    }

    /// Drains up to `max` completions from a CQ.
    pub fn poll_cq(&mut self, node: NodeId, cq: CqId, max: usize) -> Vec<Cqe> {
        self.fab.poll_cq(node, cq, max)
    }

    /// Host-side memory of one node.
    pub fn mem(&mut self, node: NodeId) -> &mut NvmDevice {
        self.fab.mem(node)
    }
}
