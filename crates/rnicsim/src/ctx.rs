//! The bundled NIC calling context.
//!
//! Every host-side data path in the stack (group clients, WAL drivers,
//! storage stores, benchmark harnesses) used to thread the same triple —
//! `&mut RdmaFabric`, the current [`SimTime`], and an [`Outbox`] of
//! [`NicEffect`]s — through every call. [`NicCtx`] bundles the three into
//! one reborrowable context, so a data-path call is
//! `client.issue(ctx, op)` instead of `client.issue(fab, now, out, op)`.
//!
//! The fields stay public: code that needs the raw fabric (memory probes,
//! setup-time allocation) reaches through `ctx.fab` directly.

use crate::fabric::RdmaFabric;
use crate::types::{CqId, Cqe, NicEffect, QpId, RecvWqe, Wqe};
use netsim::NodeId;
use nvmsim::NvmDevice;
use simcore::{Outbox, SimTime};

/// The `(fabric, now, outbox)` triple every verb-posting call needs.
#[derive(Debug)]
pub struct NicCtx<'a> {
    /// The RDMA fabric (NICs, host memories, network).
    pub fab: &'a mut RdmaFabric,
    /// The current simulation instant.
    pub now: SimTime,
    /// Sink for effects the fabric emits (internal events, host notifies).
    pub out: &'a mut Outbox<NicEffect>,
}

impl<'a> NicCtx<'a> {
    /// Bundles a fabric borrow, an instant and an effect sink.
    pub fn new(fab: &'a mut RdmaFabric, now: SimTime, out: &'a mut Outbox<NicEffect>) -> Self {
        NicCtx { fab, now, out }
    }

    /// Reborrows the context for a nested call that needs ownership of a
    /// `NicCtx` value rather than a `&mut` to this one.
    pub fn reborrow(&mut self) -> NicCtx<'_> {
        NicCtx {
            fab: self.fab,
            now: self.now,
            out: self.out,
        }
    }

    /// Posts a send-side WQE at the context instant
    /// (see [`RdmaFabric::post_send`]).
    pub fn post_send(&mut self, node: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        self.fab.post_send(self.now, node, qp, wqe, self.out)
    }

    /// Posts a send-side WQE without ringing the doorbell
    /// (see [`RdmaFabric::post_send_quiet`]). Pair with [`Self::doorbell`]
    /// to coalesce a batch of posts into one engine wake.
    pub fn post_send_quiet(&mut self, node: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        self.fab.post_send_quiet(self.now, node, qp, wqe)
    }

    /// Rings the doorbell for a QP after a batch of quiet posts
    /// (see [`RdmaFabric::doorbell`]).
    pub fn doorbell(&mut self, node: NodeId, qp: QpId) {
        self.fab.doorbell(node, qp, self.out)
    }

    /// Posts a receive-side WQE (see [`RdmaFabric::post_recv`]).
    pub fn post_recv(&mut self, node: NodeId, qp: QpId, recv: RecvWqe) {
        self.fab.post_recv(self.now, node, qp, recv, self.out)
    }

    /// Grants NIC ownership of the next `count` unowned WQEs
    /// (see [`RdmaFabric::grant_next`]).
    pub fn grant_next(&mut self, node: NodeId, qp: QpId, count: u32) {
        self.fab.grant_next(self.now, node, qp, count, self.out)
    }

    /// Drains up to `max` completions from a CQ.
    pub fn poll_cq(&mut self, node: NodeId, cq: CqId, max: usize) -> Vec<Cqe> {
        self.fab.poll_cq(node, cq, max)
    }

    /// Drains up to `max` completions into a caller-provided buffer,
    /// returning how many were appended (see [`RdmaFabric::poll_cq_into`]).
    /// The allocation-free twin of [`Self::poll_cq`] for per-tick poll
    /// loops that reuse one scratch vector.
    pub fn poll_cq_into(
        &mut self,
        node: NodeId,
        cq: CqId,
        max: usize,
        out: &mut Vec<Cqe>,
    ) -> usize {
        self.fab.poll_cq_into(node, cq, max, out)
    }

    /// Host-side memory of one node.
    pub fn mem(&mut self, node: NodeId) -> &mut NvmDevice {
        self.fab.mem(node)
    }
}
