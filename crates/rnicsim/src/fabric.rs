//! The RDMA fabric: every node's NIC, memory and queue state, plus the
//! network between them.
//!
//! The model executes verbs the way the silicon does:
//!
//! * Send-queue descriptors are 64-byte images living in host memory; the
//!   engine fetches them at execution time, so anything that can write host
//!   memory (including a *remote* NIC, via a registered metadata region and
//!   an `INDIRECT` descriptor) can reprogram a pre-posted operation.
//! * Ownership is a flag bit: HyperLoop's modified driver posts WQEs without
//!   it and hands them to the NIC later ([`RdmaFabric::grant_next`]) or lets
//!   a triggered `WAIT` do it.
//! * Incoming payloads land in the NVM's volatile layer tagged as NIC-dirty;
//!   only an incoming READ (the paper's `gFLUSH`) pushes them to durability.

use crate::payload::{self, Payload};
use crate::types::{
    wqe_flags, CqId, Cqe, CqeStatus, FabricStats, Message, MrId, NicConfig, NicEffect, NicEvent,
    Opcode, QpId, RecvWqe, SrqId, Wqe, WQE_SIZE,
};
use netsim::{FabricConfig, Network, NodeId};
use nvmsim::NvmDevice;
use simcore::simtrace::{TraceKind, NO_OP};
use simcore::{MetricsRegistry, Outbox, SimDuration, SimRng, SimTime, Tracer};
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct PendingCompletion {
    wr_id: u64,
    opcode: Opcode,
    signaled: bool,
    is_read_or_atomic: bool,
    /// Where a ReadResp/CasResp payload lands in local memory.
    resp_dst: u64,
}

#[derive(Debug)]
struct QueuePair {
    peer: Option<(NodeId, QpId)>,
    /// When set, receives come from this shared pool instead of `recvs`.
    srq: Option<SrqId>,
    sq_base: u64,
    sq_slots: u32,
    /// Monotone counter of the next slot to execute.
    sq_head: u64,
    /// Monotone counter of the next slot to post into.
    sq_tail: u64,
    send_cq: CqId,
    recv_cq: CqId,
    recvs: VecDeque<RecvWqe>,
    /// Two-sided messages that arrived before a RECV was available.
    pending_rx: VecDeque<Message>,
    inflight: u32,
    outstanding_reads: u32,
    next_seq: u64,
    pending_acks: HashMap<u64, PendingCompletion>,
    engine_scheduled: bool,
    parked_on_cq: Option<CqId>,
}

#[derive(Debug, Default)]
struct Cq {
    entries: VecDeque<Cqe>,
    /// Completions not yet consumed by a WAIT.
    sem: u64,
    armed: bool,
    waiters: Vec<QpId>,
    /// True for CQs consumed exclusively by in-NIC WAIT counters: the
    /// completion bumps `sem` (and traces) but no host-pollable entry is
    /// retained, mirroring a hardware CQ ring whose entries are overwritten
    /// once the counter has seen them. Without this, a chain's loopback CQ
    /// grows by one entry per operation forever.
    wait_only: bool,
}

#[derive(Debug)]
struct NodeState {
    mem: NvmDevice,
    alloc_cursor: u64,
    mrs: Vec<(u64, u64)>,
    qps: Vec<QueuePair>,
    cqs: Vec<Cq>,
    srqs: Vec<VecDeque<RecvWqe>>,
    /// Ranges written through the NIC since the last flush.
    nic_dirty: Vec<(u64, u64)>,
}

/// The whole RDMA-connected cluster: NICs, host memories, network.
///
/// Drive it by calling the verbs API (`post_send`, `post_recv`, …) from host
/// code and routing every [`NicEffect::Internal`] effect back into
/// [`RdmaFabric::handle`] after its delay.
#[derive(Debug)]
pub struct RdmaFabric {
    config: NicConfig,
    net: Network,
    rng: SimRng,
    nodes: Vec<NodeState>,
    stats: FabricStats,
    tracer: Tracer,
}

impl RdmaFabric {
    /// Builds a fabric of `node_count` machines, each with `mem_capacity`
    /// bytes of NVM.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn new(
        node_count: u32,
        mem_capacity: u64,
        config: NicConfig,
        fabric: FabricConfig,
        seed: u64,
    ) -> Self {
        RdmaFabric {
            config,
            net: Network::new(node_count, fabric),
            rng: SimRng::new(seed),
            nodes: (0..node_count)
                .map(|_| NodeState {
                    mem: NvmDevice::new(mem_capacity),
                    alloc_cursor: 0,
                    mrs: Vec::new(),
                    qps: Vec::new(),
                    cqs: Vec::new(),
                    srqs: Vec::new(),
                    nic_dirty: Vec::new(),
                })
                .collect(),
            stats: FabricStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a trace sink on the fabric and its network. NIC data-path
    /// events (WQE fetch/execute, WAIT release, DMA, gFLUSH, cache
    /// fill/evict, CQE delivery) carry the WQE `wr_id` as their causal op id.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.net.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Snapshots fabric and per-link statistics into `reg` under `prefix`.
    pub fn export_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.stats.export_into(reg, prefix);
        self.net.export_into(reg, &format!("{prefix}.net"));
        for (i, n) in self.nodes.iter().enumerate() {
            n.mem
                .stats()
                .export_into(reg, &format!("{prefix}.nvm.node{i}"));
            // Bytes sitting in the NIC volatile cache awaiting a gFLUSH —
            // a point-in-time depth for counter-track sampling.
            let dirty: u64 = n.nic_dirty.iter().map(|&(_, len)| len).sum();
            reg.set_gauge(
                &format!("{prefix}.nvm.node{i}.nic_dirty_bytes"),
                dirty as f64,
            );
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Total bytes carried by the network so far.
    pub fn network_bytes(&self) -> u64 {
        self.net.total_bytes()
    }

    /// Direct access to a node's memory device (host/CPU view).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mem(&mut self, node: NodeId) -> &mut NvmDevice {
        &mut self.nodes[node.0 as usize].mem
    }

    /// Snapshot of one node's NVM statistics (immutable; for exporters that
    /// group nodes by replication chain rather than fabric-wide).
    pub fn nvm_stats(&self, node: NodeId) -> nvmsim::NvmStats {
        self.nodes[node.0 as usize].mem.stats()
    }

    /// Current allocation cursor of a node (next free offset).
    pub fn alloc_cursor(&self, node: NodeId) -> u64 {
        self.nodes[node.0 as usize].alloc_cursor
    }

    /// Advances a node's allocation cursor to at least `offset` — used to
    /// align a fresh node's layout with peers before a symmetric setup
    /// (e.g. a standby joining an existing replication group).
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the device capacity.
    pub fn align_allocator(&mut self, node: NodeId, offset: u64) {
        let n = &mut self.nodes[node.0 as usize];
        assert!(offset <= n.mem.capacity(), "cursor beyond device");
        n.alloc_cursor = n.alloc_cursor.max(offset);
    }

    /// Bump-allocates `len` bytes (64-byte aligned) of a node's memory.
    ///
    /// # Panics
    ///
    /// Panics if the device is exhausted.
    pub fn alloc(&mut self, node: NodeId, len: u64) -> u64 {
        let n = &mut self.nodes[node.0 as usize];
        let offset = (n.alloc_cursor + 63) & !63;
        assert!(
            offset + len <= n.mem.capacity(),
            "node {node} out of memory: want {len} at {offset}, capacity {}",
            n.mem.capacity()
        );
        n.alloc_cursor = offset + len;
        offset
    }

    /// Registers `[offset, offset+len)` for remote access.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device.
    pub fn reg_mr(&mut self, node: NodeId, offset: u64, len: u64) -> MrId {
        let n = &mut self.nodes[node.0 as usize];
        assert!(offset + len <= n.mem.capacity(), "MR outside device");
        n.mrs.push((offset, len));
        MrId(n.mrs.len() as u32 - 1)
    }

    /// Creates a completion queue.
    pub fn create_cq(&mut self, node: NodeId) -> CqId {
        let n = &mut self.nodes[node.0 as usize];
        n.cqs.push(Cq::default());
        CqId(n.cqs.len() as u32 - 1)
    }

    /// Marks a CQ as consumed exclusively by in-NIC WAIT counters: `sem`
    /// and traces behave as usual, but no host-pollable entries accumulate.
    /// Use for loopback chain CQs no host ever polls — their queues would
    /// otherwise grow by one completion per op for the lifetime of the sim.
    pub fn set_cq_wait_only(&mut self, node: NodeId, cq: CqId) {
        self.nodes[node.0 as usize].cqs[cq.0 as usize].wait_only = true;
    }

    /// Creates a shared receive queue: a pool of RECVs drained by every QP
    /// attached to it, in arrival order across the QPs — the building block
    /// the paper names for multi-client HyperLoop groups (§5).
    pub fn create_srq(&mut self, node: NodeId) -> SrqId {
        let n = &mut self.nodes[node.0 as usize];
        n.srqs.push(VecDeque::new());
        SrqId(n.srqs.len() as u32 - 1)
    }

    /// Attaches a QP's receive side to a shared receive queue. Must happen
    /// before any message arrives on the QP.
    ///
    /// # Panics
    ///
    /// Panics if the QP already holds private receives.
    pub fn attach_srq(&mut self, node: NodeId, qp: QpId, srq: SrqId) {
        let n = &mut self.nodes[node.0 as usize];
        assert!(srq.0 < n.srqs.len() as u32, "no such SRQ");
        let q = &mut n.qps[qp.0 as usize];
        assert!(q.recvs.is_empty(), "QP already has private receives");
        q.srq = Some(srq);
    }

    /// Posts a receive to a shared receive queue.
    pub fn post_srq_recv(&mut self, node: NodeId, srq: SrqId, recv: RecvWqe) {
        self.nodes[node.0 as usize].srqs[srq.0 as usize].push_back(recv);
    }

    /// Receives available on a shared receive queue.
    pub fn srq_depth(&self, node: NodeId, srq: SrqId) -> usize {
        self.nodes[node.0 as usize].srqs[srq.0 as usize].len()
    }

    /// Creates a queue pair whose send ring lives in the node's memory.
    pub fn create_qp(&mut self, node: NodeId, send_cq: CqId, recv_cq: CqId) -> QpId {
        let slots = self.config.sq_slots;
        let sq_base = self.alloc(node, slots as u64 * WQE_SIZE);
        let n = &mut self.nodes[node.0 as usize];
        assert!(send_cq.0 < n.cqs.len() as u32 && recv_cq.0 < n.cqs.len() as u32);
        n.qps.push(QueuePair {
            peer: None,
            srq: None,
            sq_base,
            sq_slots: slots,
            sq_head: 0,
            sq_tail: 0,
            send_cq,
            recv_cq,
            recvs: VecDeque::new(),
            pending_rx: VecDeque::new(),
            inflight: 0,
            outstanding_reads: 0,
            next_seq: 0,
            pending_acks: HashMap::new(),
            engine_scheduled: false,
            parked_on_cq: None,
        });
        QpId(n.qps.len() as u32 - 1)
    }

    /// Connects two queue pairs as a reliable connection (both directions).
    /// `a == b` with two different QPs forms a loopback connection used for
    /// "local RDMA" (`gMEMCPY`, local CAS).
    ///
    /// # Panics
    ///
    /// Panics if either QP is already connected.
    pub fn connect(&mut self, a: NodeId, qa: QpId, b: NodeId, qb: QpId) {
        {
            let qp = &mut self.nodes[a.0 as usize].qps[qa.0 as usize];
            assert!(qp.peer.is_none(), "{a}/{qa} already connected");
            qp.peer = Some((b, qb));
        }
        let qp = &mut self.nodes[b.0 as usize].qps[qb.0 as usize];
        assert!(
            qp.peer.is_none() || (a, qa) == (b, qb),
            "{b}/{qb} already connected"
        );
        qp.peer = Some((a, qa));
    }

    /// Address of a send-queue slot (by monotone slot counter).
    pub fn sq_slot_addr(&self, node: NodeId, qp: QpId, slot: u64) -> u64 {
        let q = &self.nodes[node.0 as usize].qps[qp.0 as usize];
        q.sq_base + (slot % q.sq_slots as u64) * WQE_SIZE
    }

    /// `(head, tail)` slot counters of a send queue.
    pub fn sq_state(&self, node: NodeId, qp: QpId) -> (u64, u64) {
        let q = &self.nodes[node.0 as usize].qps[qp.0 as usize];
        (q.sq_head, q.sq_tail)
    }

    /// Posts a send-side WQE, returning its slot counter. If the descriptor
    /// carries `HW_OWNED` the engine is kicked; otherwise it sits inert until
    /// [`RdmaFabric::grant_next`] or a WAIT enables it.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full or the QP is unconnected.
    pub fn post_send(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        wqe: Wqe,
        out: &mut Outbox<NicEffect>,
    ) -> u64 {
        let slot = self.post_send_quiet(now, node, qp, wqe);
        if wqe.is_owned() {
            self.kick(node, qp, out);
        }
        slot
    }

    /// Posts a send-side WQE *without ringing the doorbell*: the descriptor
    /// lands in the ring but the engine is not woken, even if it carries
    /// `HW_OWNED`. Callers batching several posts to one QP follow up with
    /// a single [`RdmaFabric::doorbell`] — one engine wake per batch
    /// instead of one per descriptor (doorbell coalescing).
    ///
    /// # Panics
    ///
    /// Panics if the ring is full or the QP is unconnected.
    pub fn post_send_quiet(&mut self, now: SimTime, node: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        assert!(q.peer.is_some(), "posting on unconnected {node}/{qp}");
        assert!(
            q.sq_tail - q.sq_head < q.sq_slots as u64,
            "send queue overflow on {node}/{qp}"
        );
        let slot = q.sq_tail;
        q.sq_tail += 1;
        let addr = self.sq_slot_addr(node, qp, slot);
        self.nodes[node.0 as usize]
            .mem
            .write_durable(addr, &wqe.encode())
            .expect("ring write in bounds");
        let _ = now;
        slot
    }

    /// Rings a QP's doorbell: wakes the engine if it is not already
    /// scheduled or parked. The closing half of a
    /// [`RdmaFabric::post_send_quiet`] batch.
    pub fn doorbell(&mut self, node: NodeId, qp: QpId, out: &mut Outbox<NicEffect>) {
        self.kick(node, qp, out);
    }

    /// Grants NIC ownership of the next `count` not-yet-owned WQEs (the
    /// modified-driver call HyperLoop's client uses after rewriting
    /// descriptors).
    pub fn grant_next(
        &mut self,
        _now: SimTime,
        node: NodeId,
        qp: QpId,
        count: u32,
        out: &mut Outbox<NicEffect>,
    ) {
        let (head, tail) = self.sq_state(node, qp);
        let mut granted = 0;
        for slot in head..tail {
            if granted == count {
                break;
            }
            let addr = self.sq_slot_addr(node, qp, slot);
            let mut byte = [0u8; 1];
            self.nodes[node.0 as usize]
                .mem
                .read(addr + 1, &mut byte)
                .expect("ring read in bounds");
            if byte[0] & wqe_flags::HW_OWNED == 0 {
                byte[0] |= wqe_flags::HW_OWNED;
                self.nodes[node.0 as usize]
                    .mem
                    .write_durable(addr + 1, &byte)
                    .expect("ring write in bounds");
                granted += 1;
            }
        }
        self.kick(node, qp, out);
    }

    /// Posts a receive-side WQE. If two-sided messages were stashed waiting
    /// for a buffer, the oldest is delivered immediately.
    pub fn post_recv(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        recv: RecvWqe,
        out: &mut Outbox<NicEffect>,
    ) {
        self.nodes[node.0 as usize].qps[qp.0 as usize]
            .recvs
            .push_back(recv);
        if let Some(msg) = self.nodes[node.0 as usize].qps[qp.0 as usize]
            .pending_rx
            .pop_front()
        {
            self.receive(now, node, qp, msg, out);
        }
    }

    /// Drains up to `max` host-visible completions from a CQ.
    pub fn poll_cq(&mut self, node: NodeId, cq: CqId, max: usize) -> Vec<Cqe> {
        let mut out = Vec::new();
        self.poll_cq_into(node, cq, max, &mut out);
        out
    }

    /// Drains up to `max` host-visible completions from a CQ into a
    /// caller-provided buffer (appended), returning how many were drained.
    /// The batched-completion fastpath: a polling loop reuses one buffer
    /// across every poll instead of allocating a fresh `Vec` per call.
    pub fn poll_cq_into(
        &mut self,
        node: NodeId,
        cq: CqId,
        max: usize,
        out: &mut Vec<Cqe>,
    ) -> usize {
        let c = &mut self.nodes[node.0 as usize].cqs[cq.0 as usize];
        let n = max.min(c.entries.len());
        out.extend(c.entries.drain(..n));
        n
    }

    /// Number of host-visible completions pending on a CQ.
    pub fn cq_depth(&self, node: NodeId, cq: CqId) -> usize {
        self.nodes[node.0 as usize].cqs[cq.0 as usize].entries.len()
    }

    /// The causal op id (`wr_id`) of the oldest undrained completion on a
    /// CQ, or [`NO_OP`] when the queue is empty. Lets host layers attribute
    /// the CPU work a notification triggers to the operation that raised it.
    pub fn cq_peek_op(&self, node: NodeId, cq: CqId) -> u64 {
        self.nodes[node.0 as usize].cqs[cq.0 as usize]
            .entries
            .front()
            .map_or(NO_OP, |c| c.wr_id)
    }

    /// Requests a [`NicEffect::HostNotify`] on the next completion.
    pub fn arm_cq(&mut self, node: NodeId, cq: CqId) {
        self.nodes[node.0 as usize].cqs[cq.0 as usize].armed = true;
    }

    /// Routes a previously emitted internal event back into the fabric.
    pub fn handle(&mut self, now: SimTime, event: NicEvent, out: &mut Outbox<NicEffect>) {
        match event {
            NicEvent::EngineRun { node, qp } => {
                let _t = simcore::hostprof::scope("rnicsim.engine");
                self.engine_run(now, node, qp, out)
            }
            NicEvent::Deliver { node, qp, msg } => {
                let _t = simcore::hostprof::scope("netsim.deliver");
                self.receive(now, node, qp, msg, out)
            }
        }
    }

    // ---- engine ----------------------------------------------------------

    fn kick(&mut self, node: NodeId, qp: QpId, out: &mut Outbox<NicEffect>) {
        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        if !q.engine_scheduled && q.parked_on_cq.is_none() {
            q.engine_scheduled = true;
            out.emit_now(NicEffect::Internal(NicEvent::EngineRun { node, qp }));
        }
    }

    fn read_slot(&mut self, node: NodeId, qp: QpId, slot: u64) -> Option<Wqe> {
        let addr = self.sq_slot_addr(node, qp, slot);
        let mut buf = [0u8; WQE_SIZE as usize];
        self.nodes[node.0 as usize]
            .mem
            .read(addr, &mut buf)
            .expect("ring read in bounds");
        Wqe::decode(&buf)
    }

    fn engine_run(&mut self, now: SimTime, node: NodeId, qp: QpId, out: &mut Outbox<NicEffect>) {
        {
            let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
            q.engine_scheduled = false;
            if q.parked_on_cq.is_some() {
                return; // a CQE will unpark us
            }
            if q.sq_head == q.sq_tail {
                return; // empty: a post will kick
            }
        }
        let slot = self.nodes[node.0 as usize].qps[qp.0 as usize].sq_head;
        let Some(raw) = self.read_slot(node, qp, slot) else {
            // A corrupted descriptor (bad opcode byte): complete with error.
            self.advance_with_error(now, node, qp, 0, Opcode::Nop, out);
            return;
        };
        if !raw.is_owned() {
            return; // stalled: grant_next or a WAIT will kick
        }

        // Resolve indirection: fetch the effective image from host memory.
        let mut fetch_cost = self.config.wqe_fetch;
        let eff = if raw.is_indirect() {
            fetch_cost += self.config.wqe_fetch;
            let mut img = [0u8; WQE_SIZE as usize];
            if self.nodes[node.0 as usize]
                .mem
                .read(raw.local_addr, &mut img)
                .is_err()
            {
                self.advance_with_error(now, node, qp, raw.wr_id, Opcode::Nop, out);
                return;
            }
            match Wqe::decode(&img) {
                Some(w) => w,
                None => {
                    self.advance_with_error(now, node, qp, raw.wr_id, Opcode::Nop, out);
                    return;
                }
            }
        } else {
            raw
        };

        self.tracer.emit(
            now,
            node.0,
            eff.wr_id,
            TraceKind::WqeFetch {
                qp: qp.0,
                opcode: eff.opcode as u8,
            },
        );

        if eff.opcode == Opcode::Wait {
            self.execute_wait(now, node, qp, eff, out);
            return;
        }

        {
            let q = &self.nodes[node.0 as usize].qps[qp.0 as usize];
            if eff.is_fenced() && q.outstanding_reads > 0 {
                return; // a response arrival will kick
            }
            if q.inflight >= self.config.max_inflight {
                return; // an ack will kick
            }
        }

        match eff.opcode {
            Opcode::Nop => {
                let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
                q.sq_head += 1;
                self.stats.wqes_executed += 1;
                self.tracer.emit(
                    now,
                    node.0,
                    eff.wr_id,
                    TraceKind::WqeExec {
                        qp: qp.0,
                        opcode: Opcode::Nop as u8,
                        bytes: 0,
                    },
                );
                if eff.is_signaled() {
                    let cqe = Cqe {
                        qp,
                        wr_id: eff.wr_id,
                        opcode: Opcode::Nop,
                        status: CqeStatus::Success,
                        byte_len: 0,
                        imm: None,
                    };
                    let send_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].send_cq;
                    self.complete(now, node, send_cq, cqe, out);
                }
                self.reschedule(node, qp, self.config.issue_overhead, out);
            }
            Opcode::Send | Opcode::Write | Opcode::WriteImm => {
                self.issue_data_op(now, node, qp, eff, fetch_cost, out)
            }
            Opcode::Read | Opcode::CompareSwap => {
                self.issue_request(now, node, qp, eff, fetch_cost, out)
            }
            Opcode::Wait => unreachable!("handled above"),
        }
    }

    fn execute_wait(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        eff: Wqe,
        out: &mut Outbox<NicEffect>,
    ) {
        let cq_idx = eff.wait_cq as usize;
        assert!(
            cq_idx < self.nodes[node.0 as usize].cqs.len(),
            "WAIT watches nonexistent cq{cq_idx} on {node}"
        );
        let satisfied = self.nodes[node.0 as usize].cqs[cq_idx].sem >= eff.wait_count.max(1) as u64;
        if !satisfied {
            let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
            q.parked_on_cq = Some(CqId(cq_idx as u32));
            self.nodes[node.0 as usize].cqs[cq_idx].waiters.push(qp);
            return;
        }
        self.nodes[node.0 as usize].cqs[cq_idx].sem -= eff.wait_count.max(1) as u64;
        self.stats.waits_triggered += 1;
        self.stats.wqes_executed += 1;
        self.tracer
            .emit(now, node.0, eff.wr_id, TraceKind::WaitRelease { qp: qp.0 });

        // Enable the following WQEs by setting their ownership bit in memory.
        let head = self.nodes[node.0 as usize].qps[qp.0 as usize].sq_head;
        let tail = self.nodes[node.0 as usize].qps[qp.0 as usize].sq_tail;
        for i in 1..=eff.enable_count as u64 {
            let slot = head + i;
            if slot >= tail {
                break;
            }
            let addr = self.sq_slot_addr(node, qp, slot);
            let mut byte = [0u8; 1];
            self.nodes[node.0 as usize]
                .mem
                .read(addr + 1, &mut byte)
                .expect("ring read in bounds");
            byte[0] |= wqe_flags::HW_OWNED;
            self.nodes[node.0 as usize]
                .mem
                .write_durable(addr + 1, &byte)
                .expect("ring write in bounds");
        }

        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        q.sq_head += 1;
        if eff.is_signaled() {
            let cqe = Cqe {
                qp,
                wr_id: eff.wr_id,
                opcode: Opcode::Wait,
                status: CqeStatus::Success,
                byte_len: 0,
                imm: None,
            };
            let send_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].send_cq;
            self.complete(now, node, send_cq, cqe, out);
        }
        self.reschedule(node, qp, self.config.wait_process, out);
    }

    /// SEND / WRITE / WRITE_IMM: gather locally, ship to the peer.
    fn issue_data_op(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        eff: Wqe,
        fetch_cost: SimDuration,
        out: &mut Outbox<NicEffect>,
    ) {
        // Gather into a pooled buffer: the one copy the op pays. Every hop
        // downstream shares this payload by reference.
        let node_idx = node.0 as usize;
        let gathered = if eff.len == 0 {
            self.nodes[node_idx]
                .mem
                .read(eff.local_addr, &mut [])
                .map(|()| Payload::empty())
        } else {
            Payload::try_with(eff.len as usize, |buf| {
                self.nodes[node_idx].mem.read(eff.local_addr, buf)
            })
        };
        let payload = match gathered {
            Ok(p) => p,
            Err(_) => {
                self.advance_with_error(now, node, qp, eff.wr_id, eff.opcode, out);
                return;
            }
        };
        let issue_cost = fetch_cost + self.config.issue_overhead + self.config.dma(eff.len);
        let (peer_node, peer_qp) = self.nodes[node.0 as usize].qps[qp.0 as usize]
            .peer
            .expect("connected");

        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending_acks.insert(
            seq,
            PendingCompletion {
                wr_id: eff.wr_id,
                opcode: eff.opcode,
                signaled: eff.is_signaled(),
                is_read_or_atomic: false,
                resp_dst: 0,
            },
        );
        q.inflight += 1;
        q.sq_head += 1;
        self.stats.wqes_executed += 1;
        self.tracer.emit(
            now,
            node.0,
            eff.wr_id,
            TraceKind::WqeExec {
                qp: qp.0,
                opcode: eff.opcode as u8,
                bytes: eff.len,
            },
        );
        self.tracer
            .emit(now, node.0, eff.wr_id, TraceKind::Dma { bytes: eff.len });

        let msg = match eff.opcode {
            Opcode::Send => Message::Send {
                payload,
                imm: None,
                seq,
            },
            Opcode::Write => Message::Write {
                remote_addr: eff.remote_addr,
                payload,
                imm: None,
                seq,
            },
            Opcode::WriteImm => Message::Write {
                remote_addr: eff.remote_addr,
                payload,
                imm: Some(eff.compare_or_imm),
                seq,
            },
            _ => unreachable!(),
        };
        let arrival = self.net.deliver_at_traced(
            node,
            peer_node,
            msg.wire_bytes(),
            now + issue_cost,
            &mut self.rng,
            eff.wr_id,
        );
        out.emit(
            arrival.since(now),
            NicEffect::Internal(NicEvent::Deliver {
                node: peer_node,
                qp: peer_qp,
                msg,
            }),
        );
        self.reschedule(node, qp, issue_cost, out);
    }

    /// READ / CAS: small request, response carries the data.
    fn issue_request(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        eff: Wqe,
        fetch_cost: SimDuration,
        out: &mut Outbox<NicEffect>,
    ) {
        let issue_cost = fetch_cost + self.config.issue_overhead;
        let (peer_node, peer_qp) = self.nodes[node.0 as usize].qps[qp.0 as usize]
            .peer
            .expect("connected");
        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending_acks.insert(
            seq,
            PendingCompletion {
                wr_id: eff.wr_id,
                opcode: eff.opcode,
                signaled: eff.is_signaled(),
                is_read_or_atomic: true,
                resp_dst: eff.local_addr,
            },
        );
        q.inflight += 1;
        q.outstanding_reads += 1;
        q.sq_head += 1;
        self.stats.wqes_executed += 1;
        self.tracer.emit(
            now,
            node.0,
            eff.wr_id,
            TraceKind::WqeExec {
                qp: qp.0,
                opcode: eff.opcode as u8,
                bytes: eff.len,
            },
        );

        let msg = match eff.opcode {
            Opcode::Read => Message::ReadReq {
                remote_addr: eff.remote_addr,
                len: eff.len,
                seq,
            },
            Opcode::CompareSwap => Message::CasReq {
                remote_addr: eff.remote_addr,
                compare: eff.compare_or_imm,
                swap: eff.swap,
                seq,
            },
            _ => unreachable!(),
        };
        let arrival = self.net.deliver_at_traced(
            node,
            peer_node,
            msg.wire_bytes(),
            now + issue_cost,
            &mut self.rng,
            eff.wr_id,
        );
        out.emit(
            arrival.since(now),
            NicEffect::Internal(NicEvent::Deliver {
                node: peer_node,
                qp: peer_qp,
                msg,
            }),
        );
        self.reschedule(node, qp, issue_cost, out);
    }

    fn advance_with_error(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        wr_id: u64,
        opcode: Opcode,
        out: &mut Outbox<NicEffect>,
    ) {
        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        q.sq_head += 1;
        self.stats.errors += 1;
        let send_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].send_cq;
        let cqe = Cqe {
            qp,
            wr_id,
            opcode,
            status: CqeStatus::LocalAccessError,
            byte_len: 0,
            imm: None,
        };
        self.complete(now, node, send_cq, cqe, out);
        self.reschedule(node, qp, self.config.issue_overhead, out);
    }

    fn reschedule(
        &mut self,
        node: NodeId,
        qp: QpId,
        delay: SimDuration,
        out: &mut Outbox<NicEffect>,
    ) {
        let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
        if !q.engine_scheduled {
            q.engine_scheduled = true;
            out.emit(delay, NicEffect::Internal(NicEvent::EngineRun { node, qp }));
        }
    }

    // ---- responder side --------------------------------------------------

    /// If stashed two-sided messages can now be served, schedule the oldest
    /// for redelivery.
    fn drain_stash(&mut self, node: NodeId, qp: QpId, out: &mut Outbox<NicEffect>) {
        if !self.nodes[node.0 as usize].qps[qp.0 as usize]
            .pending_rx
            .is_empty()
            && self.recv_available(node, qp)
        {
            let msg = self.nodes[node.0 as usize].qps[qp.0 as usize]
                .pending_rx
                .pop_front()
                .expect("non-empty");
            out.emit_now(NicEffect::Internal(NicEvent::Deliver { node, qp, msg }));
        }
    }

    fn recv_available(&self, node: NodeId, qp: QpId) -> bool {
        let q = &self.nodes[node.0 as usize].qps[qp.0 as usize];
        match q.srq {
            Some(srq) => !self.nodes[node.0 as usize].srqs[srq.0 as usize].is_empty(),
            None => !q.recvs.is_empty(),
        }
    }

    fn pop_recv(&mut self, node: NodeId, qp: QpId) -> Option<RecvWqe> {
        let srq = self.nodes[node.0 as usize].qps[qp.0 as usize].srq;
        match srq {
            Some(srq) => self.nodes[node.0 as usize].srqs[srq.0 as usize].pop_front(),
            None => self.nodes[node.0 as usize].qps[qp.0 as usize]
                .recvs
                .pop_front(),
        }
    }

    fn mr_covers(&self, node: NodeId, addr: u64, len: u64) -> bool {
        let span = len.max(1);
        self.nodes[node.0 as usize]
            .mrs
            .iter()
            .any(|&(o, l)| addr >= o && addr + span <= o + l)
    }

    /// Looks up the causal op id (the WQE `wr_id`) a responder-side action
    /// belongs to, via the requester's still-pending completion for `seq`.
    fn requester_op(&self, requester: NodeId, qp: QpId, seq: u64) -> u64 {
        self.nodes[requester.0 as usize].qps[qp.0 as usize]
            .pending_acks
            .get(&seq)
            .map_or(NO_OP, |p| p.wr_id)
    }

    fn nic_write(&mut self, now: SimTime, node: NodeId, op: u64, addr: u64, data: &[u8]) {
        self.nodes[node.0 as usize]
            .mem
            .write(addr, data)
            .expect("bounds pre-checked");
        if !data.is_empty() {
            self.nodes[node.0 as usize]
                .nic_dirty
                .push((addr, data.len() as u64));
            self.tracer.emit(
                now,
                node.0,
                op,
                TraceKind::CacheFill {
                    bytes: data.len() as u64,
                },
            );
        }
    }

    fn receive(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        msg: Message,
        out: &mut Outbox<NicEffect>,
    ) {
        // Per-QP FIFO with receiver-not-ready stashing: if older two-sided
        // messages are parked waiting for receives, the newcomer queues
        // behind them and the oldest is (re)tried first.
        let msg = {
            let two_sided = matches!(
                &msg,
                Message::Send { .. } | Message::Write { imm: Some(_), .. }
            );
            let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
            if two_sided && !q.pending_rx.is_empty() {
                q.pending_rx.push_back(msg);
                q.pending_rx.pop_front().expect("non-empty")
            } else {
                msg
            }
        };
        let (peer_node, peer_qp) = self.nodes[node.0 as usize].qps[qp.0 as usize]
            .peer
            .expect("connected");
        match msg {
            Message::Write {
                remote_addr,
                payload,
                imm,
                seq,
            } => {
                if imm.is_some() && !self.recv_available(node, qp) {
                    // Receiver not ready: stash until a RECV is posted.
                    self.nodes[node.0 as usize].qps[qp.0 as usize]
                        .pending_rx
                        .push_back(Message::Write {
                            remote_addr,
                            payload,
                            imm,
                            seq,
                        });
                    return;
                }
                let ok = self.mr_covers(node, remote_addr, payload.len() as u64);
                let op = self.requester_op(peer_node, peer_qp, seq);
                let cost = if ok {
                    self.nic_write(now, node, op, remote_addr, &payload);
                    if let Some(imm_val) = imm {
                        let recv = self.pop_recv(node, qp).expect("checked above");
                        let recv_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].recv_cq;
                        let cqe = Cqe {
                            qp,
                            wr_id: recv.wr_id,
                            opcode: Opcode::WriteImm,
                            status: CqeStatus::Success,
                            byte_len: payload.len() as u64,
                            imm: Some(imm_val),
                        };
                        payload::recycle_sges(recv.sges);
                        self.complete(now, node, recv_cq, cqe, out);
                    }
                    self.config.dma(payload.len() as u64)
                } else {
                    self.stats.errors += 1;
                    SimDuration::ZERO
                };
                let status = if ok {
                    CqeStatus::Success
                } else {
                    CqeStatus::RemoteAccessError
                };
                self.respond(
                    now,
                    cost,
                    node,
                    peer_node,
                    peer_qp,
                    Message::Ack { seq, status },
                    op,
                    out,
                );
            }
            Message::Send { payload, imm, seq } => {
                if !self.recv_available(node, qp) {
                    self.nodes[node.0 as usize].qps[qp.0 as usize]
                        .pending_rx
                        .push_back(Message::Send { payload, imm, seq });
                    return;
                }
                let recv = self.pop_recv(node, qp).expect("checked above");
                let capacity: u64 = recv.sges.iter().map(|&(_, l)| l as u64).sum();
                let ok = capacity >= payload.len() as u64;
                let op = self.requester_op(peer_node, peer_qp, seq);
                let status = if ok {
                    // Scatter straight out of the shared payload — no
                    // intermediate chunk copies.
                    let mut off = 0usize;
                    for &(addr, len) in &recv.sges {
                        if off >= payload.len() {
                            break;
                        }
                        let take = (payload.len() - off).min(len as usize);
                        self.nic_write(now, node, op, addr, &payload[off..off + take]);
                        off += take;
                    }
                    CqeStatus::Success
                } else {
                    self.stats.errors += 1;
                    CqeStatus::LocalAccessError
                };
                let recv_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].recv_cq;
                let cqe = Cqe {
                    qp,
                    wr_id: recv.wr_id,
                    opcode: Opcode::Send,
                    status,
                    byte_len: payload.len() as u64,
                    imm,
                };
                payload::recycle_sges(recv.sges);
                let cost = self.config.dma(payload.len() as u64);
                self.complete(now, node, recv_cq, cqe, out);
                self.respond(
                    now,
                    cost,
                    node,
                    peer_node,
                    peer_qp,
                    Message::Ack { seq, status },
                    op,
                    out,
                );
                self.drain_stash(node, qp, out);
            }
            Message::ReadReq {
                remote_addr,
                len,
                seq,
            } => {
                // A PCIe read forces write-back of everything the NIC has
                // posted: this is the durability point of gFLUSH.
                let op = self.requester_op(peer_node, peer_qp, seq);
                let mut dirty: Vec<(u64, u64)> =
                    std::mem::take(&mut self.nodes[node.0 as usize].nic_dirty);
                let flushed_any = !dirty.is_empty();
                let flushed_bytes: u64 = dirty.iter().map(|&(_, l)| l).sum();
                let flushed_ranges = dirty.len() as u32;
                for &(o, l) in &dirty {
                    self.nodes[node.0 as usize]
                        .mem
                        .flush_range(o, l)
                        .expect("dirty range in bounds");
                }
                // Hand the buffer back: gFLUSH fires once per chained op, so
                // dropping it here would mean an alloc/free pair per flush.
                dirty.clear();
                let nd = &mut self.nodes[node.0 as usize].nic_dirty;
                if nd.is_empty() {
                    *nd = dirty;
                }
                if flushed_any {
                    self.stats.nic_flushes += 1;
                    self.tracer.emit(
                        now,
                        node.0,
                        op,
                        TraceKind::GFlush {
                            bytes: flushed_bytes,
                            ranges: flushed_ranges,
                        },
                    );
                    self.tracer.emit(
                        now,
                        node.0,
                        op,
                        TraceKind::CacheEvict {
                            bytes: flushed_bytes,
                        },
                    );
                }
                let ok = self.mr_covers(node, remote_addr, len);
                let (payload, status) = if ok {
                    let data = if len > 0 {
                        Payload::try_with(len as usize, |buf| {
                            self.nodes[node.0 as usize].mem.read(remote_addr, buf)
                        })
                        .expect("MR-covered read")
                    } else {
                        Payload::empty()
                    };
                    (data, CqeStatus::Success)
                } else {
                    self.stats.errors += 1;
                    (Payload::empty(), CqeStatus::RemoteAccessError)
                };
                let cost = self.config.flush_base + self.config.dma(len);
                self.respond(
                    now,
                    cost,
                    node,
                    peer_node,
                    peer_qp,
                    Message::ReadResp {
                        seq,
                        payload,
                        status,
                    },
                    op,
                    out,
                );
            }
            Message::CasReq {
                remote_addr,
                compare,
                swap,
                seq,
            } => {
                let op = self.requester_op(peer_node, peer_qp, seq);
                let (original, status) = if remote_addr % 8 != 0 {
                    self.stats.errors += 1;
                    (0, CqeStatus::MisalignedAtomic)
                } else if !self.mr_covers(node, remote_addr, 8) {
                    self.stats.errors += 1;
                    (0, CqeStatus::RemoteAccessError)
                } else {
                    let mut cur = [0u8; 8];
                    self.nodes[node.0 as usize]
                        .mem
                        .read(remote_addr, &mut cur)
                        .expect("MR-covered read");
                    let original = u64::from_le_bytes(cur);
                    if original == compare {
                        let bytes = swap.to_le_bytes();
                        self.nic_write(now, node, op, remote_addr, &bytes);
                    }
                    (original, CqeStatus::Success)
                };
                self.respond(
                    now,
                    self.config.cas_latency,
                    node,
                    peer_node,
                    peer_qp,
                    Message::CasResp {
                        seq,
                        original,
                        status,
                    },
                    op,
                    out,
                );
            }
            Message::Ack { seq, status } => {
                self.complete_request(now, node, qp, seq, status, None, out);
            }
            Message::ReadResp {
                seq,
                payload,
                status,
            } => {
                self.complete_request(now, node, qp, seq, status, Some(&payload), out);
            }
            Message::CasResp {
                seq,
                original,
                status,
            } => {
                let bytes = original.to_le_bytes();
                self.complete_request(now, node, qp, seq, status, Some(&bytes), out);
            }
        }
    }

    /// Sends a response `cost` after `now`; the emitted delay is relative to
    /// `now` (the current handler instant).
    #[allow(clippy::too_many_arguments)] // wire-level plumbing, all distinct
    fn respond(
        &mut self,
        now: SimTime,
        cost: SimDuration,
        from: NodeId,
        to: NodeId,
        to_qp: QpId,
        msg: Message,
        op: u64,
        out: &mut Outbox<NicEffect>,
    ) {
        let arrival =
            self.net
                .deliver_at_traced(from, to, msg.wire_bytes(), now + cost, &mut self.rng, op);
        out.emit(
            arrival.since(now),
            NicEffect::Internal(NicEvent::Deliver {
                node: to,
                qp: to_qp,
                msg,
            }),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_request(
        &mut self,
        now: SimTime,
        node: NodeId,
        qp: QpId,
        seq: u64,
        status: CqeStatus,
        resp_payload: Option<&[u8]>,
        out: &mut Outbox<NicEffect>,
    ) {
        let pending = {
            let q = &mut self.nodes[node.0 as usize].qps[qp.0 as usize];
            let Some(p) = q.pending_acks.remove(&seq) else {
                return; // duplicate/stale
            };
            q.inflight -= 1;
            if p.is_read_or_atomic {
                q.outstanding_reads -= 1;
            }
            p
        };
        if let Some(data) = resp_payload {
            if !data.is_empty() && status == CqeStatus::Success {
                self.nic_write(now, node, pending.wr_id, pending.resp_dst, data);
            }
        }
        if pending.signaled || status != CqeStatus::Success {
            let send_cq = self.nodes[node.0 as usize].qps[qp.0 as usize].send_cq;
            let byte_len = 0;
            let cqe = Cqe {
                qp,
                wr_id: pending.wr_id,
                opcode: pending.opcode,
                status,
                byte_len,
                imm: None,
            };
            self.complete(now, node, send_cq, cqe, out);
        }
        // Window/fence capacity freed: let the engine make progress.
        self.kick(node, qp, out);
    }

    /// Appends a CQE, bumps the WAIT semaphore, notifies the host and
    /// unparks engines waiting on this CQ.
    fn complete(
        &mut self,
        now: SimTime,
        node: NodeId,
        cq: CqId,
        cqe: Cqe,
        out: &mut Outbox<NicEffect>,
    ) {
        self.tracer.emit(
            now,
            node.0,
            cqe.wr_id,
            TraceKind::Cqe {
                cq: cq.0,
                ok: cqe.status == CqeStatus::Success,
            },
        );
        let c = &mut self.nodes[node.0 as usize].cqs[cq.0 as usize];
        if !c.wait_only {
            c.entries.push_back(cqe);
        }
        c.sem += 1;
        if c.armed {
            c.armed = false;
            out.emit_now(NicEffect::HostNotify { node, cq });
        }
        let mut waiters = std::mem::take(&mut c.waiters);
        for qp in waiters.drain(..) {
            self.nodes[node.0 as usize].qps[qp.0 as usize].parked_on_cq = None;
            self.kick(node, qp, out);
        }
        // Hand the (drained) buffer back so wake-ups stop allocating. A WQE
        // parked during the loop keeps its fresh vector instead.
        let c = &mut self.nodes[node.0 as usize].cqs[cq.0 as usize];
        if c.waiters.is_empty() {
            c.waiters = waiters;
        }
    }
}
