//! # rnicsim — a commodity RDMA NIC, modelled at the verbs/WQE layer
//!
//! HyperLoop (SIGCOMM 2018) programs *unmodified* ConnectX-3 NICs to run
//! replicated transactions without host CPUs, using two mechanisms:
//!
//! 1. **`WAIT` work requests** (Mellanox CORE-Direct): a send queue blocks
//!    until a watched completion queue accumulates N completions, then the
//!    NIC itself enables and executes the following pre-posted WQEs.
//! 2. **Remote work-request manipulation**: the driver is modified to (a)
//!    post WQEs *without* giving the NIC ownership and (b) register the
//!    descriptor metadata region so that a remote NIC can rewrite memory
//!    descriptors with ordinary RDMA, before ownership is granted.
//!
//! This crate models a fabric of such NICs faithfully at the queue level:
//! 64-byte descriptors in host memory ([`Wqe`]), ownership bits, `WAIT`
//! semaphores, fences, RECV scatter lists, atomics, MR bounds checks, DMA
//! costs, and a volatile on-NIC cache whose durability point is an incoming
//! RDMA READ (the paper's `gFLUSH`).
//!
//! One modelling choice is made explicit: where real HyperLoop scatters
//! incoming metadata *directly onto* descriptor fields, the model fetches
//! effective descriptors from a metadata region through an
//! [`wqe_flags::INDIRECT`] image pointer. Both realize "the NIC reads its
//! orders from RDMA-writable host memory at execution time"; the indirection
//! keeps ring layout and payload layout decoupled (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod fabric;
pub mod payload;
pub mod types;

pub use ctx::NicCtx;
pub use fabric::RdmaFabric;
pub use netsim::NodeId;
pub use payload::Payload;
pub use types::{
    wqe_flags, CqId, Cqe, CqeStatus, FabricStats, Message, MrId, NicConfig, NicEffect, NicEvent,
    Opcode, QpId, RecvWqe, SrqId, Wqe, WQE_SIZE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FabricConfig;
    use simcore::prelude::*;

    /// Harness: fabric + queue, with host notifications recorded.
    struct Harness {
        fab: RdmaFabric,
        notifies: Vec<(SimTime, NodeId, CqId)>,
    }

    #[derive(Debug)]
    enum Ev {
        Nic(NicEvent),
        Notify(NodeId, CqId),
    }

    impl Harness {
        fn new(nodes: u32) -> Simulation<Harness> {
            Simulation::new(Harness {
                fab: RdmaFabric::new(
                    nodes,
                    1 << 22,
                    NicConfig::default(),
                    FabricConfig::default(),
                    7,
                ),
                notifies: Vec::new(),
            })
        }

        fn route(out: &mut Outbox<NicEffect>, q: &mut EventQueue<Ev>) {
            for (delay, eff) in out.drain() {
                match eff {
                    NicEffect::Internal(ev) => q.push_after(delay, Ev::Nic(ev)),
                    NicEffect::HostNotify { node, cq } => q.push_after(delay, Ev::Notify(node, cq)),
                }
            }
        }
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Nic(nic) => {
                    let mut out = Outbox::new();
                    self.fab.handle(now, nic, &mut out);
                    Self::route(&mut out, q);
                }
                Ev::Notify(n, c) => self.notifies.push((now, n, c)),
            }
        }
    }

    /// Builds a connected pair of QPs (one per node) with per-node CQs.
    fn pair(sim: &mut Simulation<Harness>, a: NodeId, b: NodeId) -> (QpId, QpId, CqId, CqId) {
        let cq_a = sim.model.fab.create_cq(a);
        let cq_b = sim.model.fab.create_cq(b);
        let qa = sim.model.fab.create_qp(a, cq_a, cq_a);
        let qb = sim.model.fab.create_qp(b, cq_b, cq_b);
        sim.model.fab.connect(a, qa, b, qb);
        (qa, qb, cq_a, cq_b)
    }

    fn post_send(sim: &mut Simulation<Harness>, n: NodeId, qp: QpId, wqe: Wqe) -> u64 {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        let slot = sim.model.fab.post_send(now, n, qp, wqe, &mut out);
        Harness::route(&mut out, &mut sim.queue);
        slot
    }

    fn post_recv(sim: &mut Simulation<Harness>, n: NodeId, qp: QpId, recv: RecvWqe) {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        sim.model.fab.post_recv(now, n, qp, recv, &mut out);
        Harness::route(&mut out, &mut sim.queue);
    }

    fn grant(sim: &mut Simulation<Harness>, n: NodeId, qp: QpId, count: u32) {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        sim.model.fab.grant_next(now, n, qp, count, &mut out);
        Harness::route(&mut out, &mut sim.queue);
    }

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    #[test]
    fn one_sided_write_lands_and_completes() {
        let mut sim = Harness::new(2);
        let (qa, _qb, cq_a, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096);
        sim.model.fab.reg_mr(N1, dst, 4096);
        let src = sim.model.fab.alloc(N0, 4096);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, b"payload!")
            .unwrap();

        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: src,
                len: 8,
                remote_addr: dst,
                wr_id: 42,
                ..Wqe::default()
            },
        );
        sim.run();

        assert_eq!(sim.model.fab.mem(N1).read_vec(dst, 8).unwrap(), b"payload!");
        let cqes = sim.model.fab.poll_cq(N0, cq_a, 16);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wr_id, 42);
        assert_eq!(cqes[0].status, CqeStatus::Success);
        // Latency sanity: a small write round-trip is a few microseconds.
        assert!(sim.now().since(SimTime::ZERO) < SimDuration::from_micros(10));
    }

    #[test]
    fn write_is_volatile_until_read_flushes() {
        let mut sim = Harness::new(2);
        let (qa, _qb, _cq_a, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096);
        sim.model.fab.reg_mr(N1, dst, 4096);
        let src = sim.model.fab.alloc(N0, 4096);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, &[9u8; 64])
            .unwrap();

        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 64,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        sim.run();
        assert!(!sim.model.fab.mem(N1).is_durable(dst, 64).unwrap());

        // gFLUSH: a 0-byte READ to the same QP flushes the NIC cache.
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Read,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: src,
                len: 0,
                remote_addr: dst,
                wr_id: 1,
                ..Wqe::default()
            },
        );
        sim.run();
        assert!(sim.model.fab.mem(N1).is_durable(dst, 64).unwrap());
        assert_eq!(sim.model.fab.stats().nic_flushes, 1);

        // And the data now survives a power failure.
        sim.model.fab.mem(N1).power_failure();
        assert_eq!(
            sim.model.fab.mem(N1).read_vec(dst, 64).unwrap(),
            vec![9u8; 64]
        );
    }

    #[test]
    fn unflushed_write_dies_in_power_failure() {
        let mut sim = Harness::new(2);
        let (qa, _qb, _, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096);
        sim.model.fab.reg_mr(N1, dst, 4096);
        let src = sim.model.fab.alloc(N0, 64);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, &[5u8; 64])
            .unwrap();
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 64,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        sim.run();
        sim.model.fab.mem(N1).power_failure();
        assert_eq!(
            sim.model.fab.mem(N1).read_vec(dst, 64).unwrap(),
            vec![0u8; 64]
        );
    }

    #[test]
    fn send_scatters_into_recv_sges() {
        let mut sim = Harness::new(2);
        let (qa, qb, _, cq_b) = pair(&mut sim, N0, N1);
        let buf1 = sim.model.fab.alloc(N1, 64);
        let buf2 = sim.model.fab.alloc(N1, 64);
        post_recv(
            &mut sim,
            N1,
            qb,
            RecvWqe {
                wr_id: 9,
                sges: vec![(buf1, 4), (buf2, 60)],
            },
        );
        let src = sim.model.fab.alloc(N0, 64);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, b"abcdefgh")
            .unwrap();
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.mem(N1).read_vec(buf1, 4).unwrap(), b"abcd");
        assert_eq!(sim.model.fab.mem(N1).read_vec(buf2, 4).unwrap(), b"efgh");
        let cqes = sim.model.fab.poll_cq(N1, cq_b, 4);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wr_id, 9);
        assert_eq!(cqes[0].byte_len, 8);
    }

    #[test]
    fn send_without_recv_is_stashed_until_post() {
        let mut sim = Harness::new(2);
        let (qa, qb, _, cq_b) = pair(&mut sim, N0, N1);
        let src = sim.model.fab.alloc(N0, 64);
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N1, cq_b), 0, "no recv yet");
        let buf = sim.model.fab.alloc(N1, 64);
        post_recv(
            &mut sim,
            N1,
            qb,
            RecvWqe {
                wr_id: 1,
                sges: vec![(buf, 64)],
            },
        );
        sim.run();
        assert_eq!(
            sim.model.fab.cq_depth(N1, cq_b),
            1,
            "stashed send delivered"
        );
    }

    #[test]
    fn cas_swaps_on_match_and_reports_original() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let target = sim.model.fab.alloc(N1, 64);
        sim.model.fab.reg_mr(N1, target, 64);
        sim.model
            .fab
            .mem(N1)
            .write_durable(target, &7u64.to_le_bytes())
            .unwrap();
        let result = sim.model.fab.alloc(N0, 64);

        // Matching CAS: 7 -> 99.
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::CompareSwap,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: result,
                remote_addr: target,
                compare_or_imm: 7,
                swap: 99,
                wr_id: 1,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(
            sim.model.fab.mem(N1).read_vec(target, 8).unwrap(),
            99u64.to_le_bytes()
        );
        assert_eq!(
            sim.model.fab.mem(N0).read_vec(result, 8).unwrap(),
            7u64.to_le_bytes(),
            "original value reported"
        );
        assert_eq!(sim.model.fab.poll_cq(N0, cq_a, 4).len(), 1);

        // Non-matching CAS: target unchanged, original reported.
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::CompareSwap,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: result,
                remote_addr: target,
                compare_or_imm: 7,
                swap: 1234,
                wr_id: 2,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(
            sim.model.fab.mem(N1).read_vec(target, 8).unwrap(),
            99u64.to_le_bytes(),
            "mismatch must not swap"
        );
        assert_eq!(
            sim.model.fab.mem(N0).read_vec(result, 8).unwrap(),
            99u64.to_le_bytes()
        );
    }

    #[test]
    fn misaligned_cas_errors() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let target = sim.model.fab.alloc(N1, 64);
        sim.model.fab.reg_mr(N1, target, 64);
        let result = sim.model.fab.alloc(N0, 64);
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::CompareSwap,
                flags: wqe_flags::HW_OWNED,
                local_addr: result,
                remote_addr: target + 3,
                ..Wqe::default()
            },
        );
        sim.run();
        let cqes = sim.model.fab.poll_cq(N0, cq_a, 4);
        assert_eq!(cqes.len(), 1, "errors complete even unsignaled");
        assert_eq!(cqes[0].status, CqeStatus::MisalignedAtomic);
    }

    #[test]
    fn write_outside_mr_errors_at_requester() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096); // NOT registered
        let src = sim.model.fab.alloc(N0, 64);
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 64,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        sim.run();
        let cqes = sim.model.fab.poll_cq(N0, cq_a, 4);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::RemoteAccessError);
        assert_eq!(
            sim.model.fab.mem(N1).read_vec(dst, 64).unwrap(),
            vec![0u8; 64],
            "unauthorized write must not land"
        );
    }

    #[test]
    fn unowned_wqe_stalls_until_grant() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 64);
        sim.model.fab.reg_mr(N1, dst, 64);
        let src = sim.model.fab.alloc(N0, 64);
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::SIGNALED, // not HW_OWNED
                local_addr: src,
                len: 8,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.poll_cq(N0, cq_a, 4).len(), 0, "must stall");
        grant(&mut sim, N0, qa, 1);
        sim.run();
        assert_eq!(sim.model.fab.poll_cq(N0, cq_a, 4).len(), 1, "grant resumes");
    }

    #[test]
    fn wait_blocks_until_recv_completion_then_forwards() {
        // Three nodes chained: 0 -> 1 -> 2, no host involvement on node 1.
        let mut sim = Harness::new(3);
        let (q01, q10, _cq0, cq1_up) = pair(&mut sim, N0, N1);
        // Node1 -> Node2 QP with its own CQ.
        let cq1_down = sim.model.fab.create_cq(N1);
        let q12 = sim.model.fab.create_qp(N1, cq1_down, cq1_down);
        let cq2 = sim.model.fab.create_cq(N2);
        let q21 = sim.model.fab.create_qp(N2, cq2, cq2);
        sim.model.fab.connect(N1, q12, N2, q21);

        // Buffers: payload staging on node1, final buffer on node2.
        let stage1 = sim.model.fab.alloc(N1, 64);
        let buf2 = sim.model.fab.alloc(N2, 64);
        post_recv(
            &mut sim,
            N1,
            q10,
            RecvWqe {
                wr_id: 1,
                sges: vec![(stage1, 64)],
            },
        );
        post_recv(
            &mut sim,
            N2,
            q21,
            RecvWqe {
                wr_id: 2,
                sges: vec![(buf2, 64)],
            },
        );

        // Node1 pre-posts: WAIT(upstream recv CQ) then SEND(stage -> node2).
        post_send(
            &mut sim,
            N1,
            q12,
            Wqe {
                opcode: Opcode::Wait,
                flags: wqe_flags::HW_OWNED,
                wait_cq: cq1_up.0,
                wait_count: 1,
                enable_count: 1,
                ..Wqe::default()
            },
        );
        post_send(
            &mut sim,
            N1,
            q12,
            Wqe {
                opcode: Opcode::Send,
                flags: 0, // disabled until the WAIT enables it
                local_addr: stage1,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N2, cq2), 0, "nothing forwarded yet");

        // Client sends to node1; node1's NIC forwards to node2 on its own.
        let src = sim.model.fab.alloc(N0, 64);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, b"hi chain")
            .unwrap();
        post_send(
            &mut sim,
            N0,
            q01,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(
            sim.model.fab.mem(N2).read_vec(buf2, 8).unwrap(),
            b"hi chain"
        );
        assert_eq!(sim.model.fab.stats().waits_triggered, 1);
    }

    #[test]
    fn indirect_descriptor_is_fetched_at_execution_time() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096);
        sim.model.fab.reg_mr(N1, dst, 4096);
        let src = sim.model.fab.alloc(N0, 4096);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, b"new data")
            .unwrap();
        let meta = sim.model.fab.alloc(N0, 64);

        // Post an unowned indirect WQE pointing at the (still zero) image.
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Nop,
                flags: wqe_flags::INDIRECT, // unowned
                local_addr: meta,
                ..Wqe::default()
            },
        );
        sim.run();
        // Rewrite the image *after* posting: this is the manipulation step.
        let image = Wqe {
            opcode: Opcode::Write,
            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
            local_addr: src,
            len: 8,
            remote_addr: dst,
            wr_id: 77,
            ..Wqe::default()
        };
        let bytes = image.encode();
        sim.model.fab.mem(N0).write_durable(meta, &bytes).unwrap();
        grant(&mut sim, N0, qa, 1);
        sim.run();
        assert_eq!(sim.model.fab.mem(N1).read_vec(dst, 8).unwrap(), b"new data");
        let cqes = sim.model.fab.poll_cq(N0, cq_a, 4);
        assert_eq!(cqes[0].wr_id, 77, "wr_id comes from the fetched image");
    }

    #[test]
    fn fence_orders_send_after_read() {
        let mut sim = Harness::new(2);
        let (qa, qb, _, cq_b) = pair(&mut sim, N0, N1);
        let dst = sim.model.fab.alloc(N1, 4096);
        sim.model.fab.reg_mr(N1, dst, 4096);
        let src = sim.model.fab.alloc(N0, 64);
        let rbuf = sim.model.fab.alloc(N0, 64);
        let notify_buf = sim.model.fab.alloc(N1, 64);
        post_recv(
            &mut sim,
            N1,
            qb,
            RecvWqe {
                wr_id: 5,
                sges: vec![(notify_buf, 64)],
            },
        );

        // WRITE, 0-byte READ (flush), then FENCED SEND: when the SEND's CQE
        // shows up at node1, the written data must already be durable there.
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 64,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Read,
                flags: wqe_flags::HW_OWNED,
                local_addr: rbuf,
                len: 0,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        post_send(
            &mut sim,
            N0,
            qa,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED | wqe_flags::FENCE,
                local_addr: src,
                len: 4,
                ..Wqe::default()
            },
        );
        // Run to completion; then verify ordering by state.
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N1, cq_b), 1, "send arrived");
        assert!(
            sim.model.fab.mem(N1).is_durable(dst, 64).unwrap(),
            "fenced send must not overtake the flush"
        );
    }

    #[test]
    fn armed_cq_notifies_host_once() {
        let mut sim = Harness::new(2);
        let (qa, qb, _, cq_b) = pair(&mut sim, N0, N1);
        let buf = sim.model.fab.alloc(N1, 64);
        post_recv(
            &mut sim,
            N1,
            qb,
            RecvWqe {
                wr_id: 1,
                sges: vec![(buf, 64)],
            },
        );
        post_recv(
            &mut sim,
            N1,
            qb,
            RecvWqe {
                wr_id: 2,
                sges: vec![(buf, 64)],
            },
        );
        sim.model.fab.arm_cq(N1, cq_b);
        let src = sim.model.fab.alloc(N0, 64);
        for _ in 0..2 {
            post_send(
                &mut sim,
                N0,
                qa,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: src,
                    len: 4,
                    ..Wqe::default()
                },
            );
        }
        sim.run();
        assert_eq!(sim.model.notifies.len(), 1, "one notify per arm");
        assert_eq!(sim.model.fab.cq_depth(N1, cq_b), 2);
    }

    #[test]
    fn pipelined_writes_reach_wire_throughput() {
        let mut sim = Harness::new(2);
        let (qa, _, cq_a, _) = pair(&mut sim, N0, N1);
        let size = 64 * 1024u64;
        let n = 64u64;
        let dst = sim.model.fab.alloc(N1, size);
        sim.model.fab.reg_mr(N1, dst, size);
        let src = sim.model.fab.alloc(N0, size);
        for _ in 0..n {
            post_send(
                &mut sim,
                N0,
                qa,
                Wqe {
                    opcode: Opcode::Write,
                    flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                    local_addr: src,
                    len: size,
                    remote_addr: dst,
                    ..Wqe::default()
                },
            );
        }
        sim.run();
        assert_eq!(sim.model.fab.poll_cq(N0, cq_a, 1024).len(), n as usize);
        let elapsed = sim.now().as_secs_f64();
        let gbps = (n * size) as f64 * 8.0 / elapsed / 1e9;
        // 56 Gbps wire, minus header overheads: expect > 40 Gbps.
        assert!(gbps > 40.0, "throughput too low: {gbps:.1} Gbps");
        assert!(gbps <= 56.0, "exceeded line rate: {gbps:.1} Gbps");
    }

    #[test]
    fn loopback_qp_copies_locally() {
        let mut sim = Harness::new(1);
        let cq1 = sim.model.fab.create_cq(N0);
        let cq2 = sim.model.fab.create_cq(N0);
        let qx = sim.model.fab.create_qp(N0, cq1, cq1);
        let qy = sim.model.fab.create_qp(N0, cq2, cq2);
        sim.model.fab.connect(N0, qx, N0, qy);
        let src = sim.model.fab.alloc(N0, 4096);
        let dst = sim.model.fab.alloc(N0, 4096);
        sim.model.fab.reg_mr(N0, dst, 4096);
        sim.model
            .fab
            .mem(N0)
            .write_durable(src, b"memcpyme")
            .unwrap();
        post_send(
            &mut sim,
            N0,
            qx,
            Wqe {
                opcode: Opcode::Write,
                flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                local_addr: src,
                len: 8,
                remote_addr: dst,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.mem(N0).read_vec(dst, 8).unwrap(), b"memcpyme");
        // Local RDMA is sub-microsecond.
        assert!(sim.now().since(SimTime::ZERO) < SimDuration::from_micros(3));
    }

    #[test]
    fn wait_consumes_semaphore_counts() {
        let mut sim = Harness::new(2);
        let (qa, qb, _, cq_b) = pair(&mut sim, N0, N1);
        let buf = sim.model.fab.alloc(N1, 64);
        for i in 0..3 {
            post_recv(
                &mut sim,
                N1,
                qb,
                RecvWqe {
                    wr_id: i,
                    sges: vec![(buf, 64)],
                },
            );
        }
        // Node1: loopback pair for the triggered op.
        let cq_lb = sim.model.fab.create_cq(N1);
        let qlb1 = sim.model.fab.create_qp(N1, cq_lb, cq_lb);
        let qlb2 = sim.model.fab.create_qp(N1, cq_lb, cq_lb);
        sim.model.fab.connect(N1, qlb1, N1, qlb2);
        let flag = sim.model.fab.alloc(N1, 64);
        sim.model.fab.reg_mr(N1, flag, 64);
        let one = sim.model.fab.alloc(N1, 64);
        sim.model.fab.mem(N1).write_durable(one, &[1u8]).unwrap();
        // WAIT for THREE completions, then write the flag byte.
        post_send(
            &mut sim,
            N1,
            qlb1,
            Wqe {
                opcode: Opcode::Wait,
                flags: wqe_flags::HW_OWNED,
                wait_cq: cq_b.0,
                wait_count: 3,
                enable_count: 1,
                ..Wqe::default()
            },
        );
        post_send(
            &mut sim,
            N1,
            qlb1,
            Wqe {
                opcode: Opcode::Write,
                flags: 0,
                local_addr: one,
                len: 1,
                remote_addr: flag,
                ..Wqe::default()
            },
        );

        let src = sim.model.fab.alloc(N0, 64);
        for k in 0..3u64 {
            post_send(
                &mut sim,
                N0,
                qa,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: src,
                    len: 4,
                    ..Wqe::default()
                },
            );
            sim.run();
            let flag_val = sim.model.fab.mem(N1).read_vec(flag, 1).unwrap()[0];
            if k < 2 {
                assert_eq!(flag_val, 0, "triggered after only {} completions", k + 1);
            } else {
                assert_eq!(flag_val, 1, "did not trigger after 3 completions");
            }
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use netsim::FabricConfig;
    use simcore::prelude::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const MR_LEN: u64 = 8192;

    struct Harness {
        fab: RdmaFabric,
    }

    impl Model for Harness {
        type Event = NicEvent;
        fn handle(&mut self, now: SimTime, ev: NicEvent, q: &mut EventQueue<NicEvent>) {
            let mut out = Outbox::new();
            self.fab.handle(now, ev, &mut out);
            for (d, eff) in out.drain() {
                if let NicEffect::Internal(ev) = eff {
                    q.push_after(d, ev);
                }
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Write { off: u64, data: Vec<u8> },
        Flush,
        Cas { word: u64, compare: u64, swap: u64 },
        PowerFailure,
    }

    fn gen_ops(seed: u64) -> Vec<Op> {
        let mut rng = SimRng::new(seed);
        let n = 1 + rng.gen_index(39);
        (0..n)
            .map(|_| match rng.gen_range(0..9) {
                0..=3 => {
                    let mut data = vec![0u8; 1 + rng.gen_index(255)];
                    rng.fill_bytes(&mut data);
                    Op::Write {
                        off: rng.gen_range(0..MR_LEN - 256),
                        data,
                    }
                }
                4 | 5 => Op::Flush,
                6 | 7 => Op::Cas {
                    word: rng.gen_range(0..16),
                    compare: rng.gen_range(0..4),
                    swap: rng.gen_range(0..4),
                },
                _ => Op::PowerFailure,
            })
            .collect()
    }

    /// Shadow model: coherent view + durable view of the remote MR.
    struct Shadow {
        coherent: Vec<u8>,
        durable: Vec<u8>,
        /// Ranges written since the last flush.
        dirty: Vec<(u64, u64)>,
    }

    impl Shadow {
        fn new() -> Self {
            Shadow {
                coherent: vec![0; MR_LEN as usize],
                durable: vec![0; MR_LEN as usize],
                dirty: Vec::new(),
            }
        }
        fn write(&mut self, off: u64, data: &[u8]) {
            self.coherent[off as usize..off as usize + data.len()].copy_from_slice(data);
            self.dirty.push((off, data.len() as u64));
        }
        fn flush(&mut self) {
            for (o, l) in self.dirty.drain(..) {
                let (o, l) = (o as usize, l as usize);
                self.durable[o..o + l].copy_from_slice(&self.coherent[o..o + l]);
            }
        }
        fn power_failure(&mut self) {
            self.dirty.clear();
            self.coherent.copy_from_slice(&self.durable);
        }
    }

    #[test]
    fn random_verbs_match_the_shadow_model() {
        for case in 0..24u64 {
            let mut sim = Simulation::new(Harness {
                fab: RdmaFabric::new(
                    2,
                    1 << 20,
                    NicConfig::default(),
                    FabricConfig::default(),
                    77,
                ),
            });
            let cq0 = sim.model.fab.create_cq(N0);
            let cq1 = sim.model.fab.create_cq(N1);
            let q0 = sim.model.fab.create_qp(N0, cq0, cq0);
            let q1 = sim.model.fab.create_qp(N1, cq1, cq1);
            sim.model.fab.connect(N0, q0, N1, q1);
            let dst = sim.model.fab.alloc(N1, MR_LEN);
            sim.model.fab.reg_mr(N1, dst, MR_LEN);
            let src = sim.model.fab.alloc(N0, MR_LEN);
            let rbuf = sim.model.fab.alloc(N0, 64);

            let mut shadow = Shadow::new();
            for op in &gen_ops(0x5AD0 + case) {
                let mut out = Outbox::new();
                let now = sim.queue.now();
                match op {
                    Op::Write { off, data } => {
                        sim.model.fab.mem(N0).write_durable(src, data).unwrap();
                        sim.model.fab.post_send(
                            now,
                            N0,
                            q0,
                            Wqe {
                                opcode: Opcode::Write,
                                flags: wqe_flags::HW_OWNED,
                                local_addr: src,
                                len: data.len() as u64,
                                remote_addr: dst + off,
                                ..Wqe::default()
                            },
                            &mut out,
                        );
                        shadow.write(*off, data);
                    }
                    Op::Flush => {
                        sim.model.fab.post_send(
                            now,
                            N0,
                            q0,
                            Wqe {
                                opcode: Opcode::Read,
                                flags: wqe_flags::HW_OWNED,
                                local_addr: rbuf,
                                len: 0,
                                remote_addr: dst,
                                ..Wqe::default()
                            },
                            &mut out,
                        );
                        shadow.flush();
                    }
                    Op::Cas {
                        word,
                        compare,
                        swap,
                    } => {
                        sim.model.fab.post_send(
                            now,
                            N0,
                            q0,
                            Wqe {
                                opcode: Opcode::CompareSwap,
                                flags: wqe_flags::HW_OWNED,
                                local_addr: rbuf,
                                remote_addr: dst + word * 8,
                                compare_or_imm: *compare,
                                swap: *swap,
                                ..Wqe::default()
                            },
                            &mut out,
                        );
                        let o = (*word * 8) as usize;
                        let cur = u64::from_le_bytes(shadow.coherent[o..o + 8].try_into().unwrap());
                        if cur == *compare {
                            shadow.write(*word * 8, &swap.to_le_bytes());
                        }
                    }
                    Op::PowerFailure => {
                        // Drain in-flight traffic first, then cut power.
                        sim.run();
                        sim.model.fab.mem(N1).power_failure();
                        shadow.power_failure();
                    }
                }
                for (d, eff) in out.drain() {
                    if let NicEffect::Internal(ev) = eff {
                        sim.queue.push_after(d, ev);
                    }
                }
                sim.run(); // sequential issue: settle before comparing
                let got = sim.model.fab.mem(N1).read_vec(dst, MR_LEN).unwrap();
                assert_eq!(&got, &shadow.coherent, "coherent view diverged");
                let dur = sim.model.fab.mem(N1).read_durable_vec(dst, MR_LEN).unwrap();
                assert_eq!(&dur, &shadow.durable, "durable view diverged");
            }
            assert_eq!(sim.model.fab.stats().errors, 0);
        }
    }

    #[test]
    fn pipelined_disjoint_writes_all_land() {
        for case in 0..24u64 {
            let mut seed_rng = SimRng::new(0xF1BE + case);
            let seeds: Vec<u8> = (0..4 + seed_rng.gen_index(28))
                .map(|_| seed_rng.next_u64() as u8)
                .collect();
            let mut sim = Simulation::new(Harness {
                fab: RdmaFabric::new(2, 1 << 20, NicConfig::default(), FabricConfig::default(), 5),
            });
            let cq0 = sim.model.fab.create_cq(N0);
            let cq1 = sim.model.fab.create_cq(N1);
            let q0 = sim.model.fab.create_qp(N0, cq0, cq0);
            let q1 = sim.model.fab.create_qp(N1, cq1, cq1);
            sim.model.fab.connect(N0, q0, N1, q1);
            let n = seeds.len() as u64;
            let dst = sim.model.fab.alloc(N1, n * 128);
            sim.model.fab.reg_mr(N1, dst, n * 128);
            let src = sim.model.fab.alloc(N0, n * 128);

            let mut out = Outbox::new();
            for (i, &b) in seeds.iter().enumerate() {
                let i = i as u64;
                sim.model
                    .fab
                    .mem(N0)
                    .write_durable(src + i * 128, &[b; 128])
                    .unwrap();
                sim.model.fab.post_send(
                    SimTime::ZERO,
                    N0,
                    q0,
                    Wqe {
                        opcode: Opcode::Write,
                        flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED,
                        local_addr: src + i * 128,
                        len: 128,
                        remote_addr: dst + i * 128,
                        wr_id: i,
                        ..Wqe::default()
                    },
                    &mut out,
                );
            }
            for (d, eff) in out.drain() {
                if let NicEffect::Internal(ev) = eff {
                    sim.queue.push_after(d, ev);
                }
            }
            sim.run();
            let cqes = sim.model.fab.poll_cq(N0, cq0, 1024);
            assert_eq!(cqes.len(), seeds.len(), "missing completions");
            for (i, &b) in seeds.iter().enumerate() {
                let got = sim
                    .model
                    .fab
                    .mem(N1)
                    .read_vec(dst + i as u64 * 128, 128)
                    .unwrap();
                assert_eq!(got, vec![b; 128]);
            }
            assert_eq!(sim.model.fab.stats().errors, 0);
        }
    }
}

#[cfg(test)]
mod srq_tests {
    use super::*;
    use netsim::FabricConfig;
    use simcore::prelude::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    struct Harness {
        fab: RdmaFabric,
    }

    impl Model for Harness {
        type Event = NicEvent;
        fn handle(&mut self, now: SimTime, ev: NicEvent, q: &mut EventQueue<NicEvent>) {
            let mut out = Outbox::new();
            self.fab.handle(now, ev, &mut out);
            for (d, eff) in out.drain() {
                if let NicEffect::Internal(ev) = eff {
                    q.push_after(d, ev);
                }
            }
        }
    }

    fn post(sim: &mut Simulation<Harness>, n: NodeId, qp: QpId, wqe: Wqe) {
        let mut out = Outbox::new();
        let now = sim.queue.now();
        sim.model.fab.post_send(now, n, qp, wqe, &mut out);
        for (d, eff) in out.drain() {
            if let NicEffect::Internal(ev) = eff {
                sim.queue.push_after(d, ev);
            }
        }
    }

    /// Two clients (nodes 1 and 2) send to one server QP pair sharing an
    /// SRQ: receives drain from the shared pool in arrival order.
    #[test]
    fn srq_drains_across_qps_in_arrival_order() {
        let mut sim = Simulation::new(Harness {
            fab: RdmaFabric::new(3, 1 << 20, NicConfig::default(), FabricConfig::default(), 3),
        });
        let fab = &mut sim.model.fab;
        let scq = fab.create_cq(N0);
        let srq = fab.create_srq(N0);
        let sqp1 = fab.create_qp(N0, scq, scq);
        let sqp2 = fab.create_qp(N0, scq, scq);
        fab.attach_srq(N0, sqp1, srq);
        fab.attach_srq(N0, sqp2, srq);
        let c1cq = fab.create_cq(N1);
        let c1 = fab.create_qp(N1, c1cq, c1cq);
        let c2cq = fab.create_cq(N2);
        let c2 = fab.create_qp(N2, c2cq, c2cq);
        fab.connect(N1, c1, N0, sqp1);
        fab.connect(N2, c2, N0, sqp2);

        // Shared pool of 4 receives with distinct buffers.
        let bufs: Vec<u64> = (0..4).map(|_| fab.alloc(N0, 64)).collect();
        for (i, &b) in bufs.iter().enumerate() {
            fab.post_srq_recv(
                N0,
                srq,
                RecvWqe {
                    wr_id: i as u64,
                    sges: vec![(b, 64)],
                },
            );
        }
        assert_eq!(fab.srq_depth(N0, srq), 4);

        let s1 = fab.alloc(N1, 64);
        fab.mem(N1).write_durable(s1, b"from-c1!").unwrap();
        let s2 = fab.alloc(N2, 64);
        fab.mem(N2).write_durable(s2, b"from-c2!").unwrap();

        // Interleave sends from both clients.
        for i in 0..2 {
            post(
                &mut sim,
                N1,
                c1,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: s1,
                    len: 8,
                    wr_id: 10 + i,
                    ..Wqe::default()
                },
            );
            post(
                &mut sim,
                N2,
                c2,
                Wqe {
                    opcode: Opcode::Send,
                    flags: wqe_flags::HW_OWNED,
                    local_addr: s2,
                    len: 8,
                    wr_id: 20 + i,
                    ..Wqe::default()
                },
            );
        }
        sim.run();

        assert_eq!(sim.model.fab.srq_depth(N0, srq), 0, "pool fully drained");
        let cqes = sim.model.fab.poll_cq(N0, scq, 16);
        assert_eq!(cqes.len(), 4, "one completion per send");
        // Every pooled buffer holds a payload from one of the clients.
        let mut from1 = 0;
        let mut from2 = 0;
        for &b in &bufs {
            let got = sim.model.fab.mem(N0).read_vec(b, 8).unwrap();
            match got.as_slice() {
                b"from-c1!" => from1 += 1,
                b"from-c2!" => from2 += 1,
                other => panic!("garbled buffer: {other:?}"),
            }
        }
        assert_eq!((from1, from2), (2, 2));
        assert_eq!(sim.model.fab.stats().errors, 0);
    }

    #[test]
    fn srq_exhaustion_stashes_until_replenished() {
        let mut sim = Simulation::new(Harness {
            fab: RdmaFabric::new(2, 1 << 20, NicConfig::default(), FabricConfig::default(), 9),
        });
        let fab = &mut sim.model.fab;
        let scq = fab.create_cq(N0);
        let srq = fab.create_srq(N0);
        let sqp = fab.create_qp(N0, scq, scq);
        fab.attach_srq(N0, sqp, srq);
        let ccq = fab.create_cq(N1);
        let cqp = fab.create_qp(N1, ccq, ccq);
        fab.connect(N1, cqp, N0, sqp);
        let src = fab.alloc(N1, 64);

        post(
            &mut sim,
            N1,
            cqp,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N0, scq), 0, "no recv: stashed");

        // Replenish the pool; the stashed message needs a new delivery kick
        // (post_recv drives this for private queues; for SRQs the consumer
        // polls, so we emulate the next arrival instead).
        let buf = sim.model.fab.alloc(N0, 64);
        sim.model.fab.post_srq_recv(
            N0,
            srq,
            RecvWqe {
                wr_id: 1,
                sges: vec![(buf, 64)],
            },
        );
        // A follow-up send flushes the stash (FIFO per QP).
        let buf2 = sim.model.fab.alloc(N0, 64);
        sim.model.fab.post_srq_recv(
            N0,
            srq,
            RecvWqe {
                wr_id: 2,
                sges: vec![(buf2, 64)],
            },
        );
        post(
            &mut sim,
            N1,
            cqp,
            Wqe {
                opcode: Opcode::Send,
                flags: wqe_flags::HW_OWNED,
                local_addr: src,
                len: 8,
                ..Wqe::default()
            },
        );
        sim.run();
        assert_eq!(sim.model.fab.cq_depth(N0, scq), 2, "stash + new delivered");
    }

    #[test]
    #[should_panic(expected = "private receives")]
    fn attaching_srq_after_private_recvs_panics() {
        let mut fab = RdmaFabric::new(1, 1 << 20, NicConfig::default(), FabricConfig::default(), 1);
        let cq = fab.create_cq(N0);
        let qp = fab.create_qp(N0, cq, cq);
        let srq = fab.create_srq(N0);
        let mut out = Outbox::new();
        fab.post_recv(
            SimTime::ZERO,
            N0,
            qp,
            RecvWqe {
                wr_id: 0,
                sges: vec![],
            },
            &mut out,
        );
        fab.attach_srq(N0, qp, srq);
    }
}
