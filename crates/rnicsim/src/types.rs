//! Identifiers, configuration, work queue elements and completion formats.

use crate::payload::Payload;
use netsim::NodeId;
use simcore::SimDuration;
use std::fmt;

/// Identifies a queue pair on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpId(pub u32);

impl fmt::Display for QpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Identifies a completion queue on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CqId(pub u32);

impl fmt::Display for CqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cq{}", self.0)
    }
}

/// Identifies a shared receive queue on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SrqId(pub u32);

/// Identifies a registered memory region on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MrId(pub u32);

/// NIC timing and capacity parameters (ConnectX-3-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicConfig {
    /// PCIe fetch of one 64-byte descriptor.
    pub wqe_fetch: SimDuration,
    /// Fixed per-WQE execution overhead in the NIC pipeline.
    pub issue_overhead: SimDuration,
    /// DMA bandwidth between NIC and host memory, bits per second.
    pub dma_bandwidth_bps: u64,
    /// Extra latency of an atomic compare-and-swap at the responder.
    pub cas_latency: SimDuration,
    /// Base cost of flushing the NIC's volatile cache to the durable medium.
    pub flush_base: SimDuration,
    /// Cost of evaluating a satisfied WAIT and enabling its successors.
    pub wait_process: SimDuration,
    /// Maximum requests a QP keeps in flight before stalling its engine.
    pub max_inflight: u32,
    /// Send-queue ring capacity (WQE slots).
    pub sq_slots: u32,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            wqe_fetch: SimDuration::from_nanos(250),
            issue_overhead: SimDuration::from_nanos(150),
            dma_bandwidth_bps: 100_000_000_000,
            cas_latency: SimDuration::from_nanos(150),
            flush_base: SimDuration::from_nanos(400),
            wait_process: SimDuration::from_nanos(100),
            max_inflight: 32,
            sq_slots: 4096,
        }
    }
}

impl NicConfig {
    /// DMA transfer time for `bytes` between NIC and host memory.
    pub fn dma(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * 8 * 1_000_000_000 / self.dma_bandwidth_bps)
    }
}

/// Verb opcodes, mirroring `ibv_wr_opcode` plus the CORE-Direct `WAIT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Two-sided send: consumes a RECV at the peer.
    Send = 0,
    /// One-sided write into the peer's registered memory.
    Write = 1,
    /// One-sided write that also consumes a RECV and delivers an immediate.
    WriteImm = 2,
    /// One-sided read from the peer's registered memory. A 0-byte read
    /// flushes the peer NIC's volatile cache (the paper's `gFLUSH`).
    Read = 3,
    /// 8-byte remote compare-and-swap; the original value lands in the
    /// local buffer.
    CompareSwap = 4,
    /// CORE-Direct: block this send queue until a watched CQ accumulates N
    /// completions, then enable the following WQEs.
    Wait = 5,
    /// Completes without doing anything (a disabled `gCAS` leg becomes this).
    Nop = 6,
}

impl Opcode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0 => Opcode::Send,
            1 => Opcode::Write,
            2 => Opcode::WriteImm,
            3 => Opcode::Read,
            4 => Opcode::CompareSwap,
            5 => Opcode::Wait,
            6 => Opcode::Nop,
            _ => return None,
        })
    }
}

/// WQE flag bits (the `flags` byte of the serialized descriptor).
pub mod wqe_flags {
    /// The NIC owns this WQE and may execute it. HyperLoop's modified driver
    /// posts descriptors *without* this bit so a remote client (or a WAIT)
    /// can set it later.
    pub const HW_OWNED: u8 = 1 << 0;
    /// Generate a CQE on the send CQ when this WQE completes.
    pub const SIGNALED: u8 = 1 << 1;
    /// Do not start until all outstanding READ/atomic responses arrived.
    pub const FENCE: u8 = 1 << 2;
    /// The real descriptor is a 64-byte image fetched from host memory at
    /// `local_addr` at execution time. This is how the model realizes
    /// HyperLoop's remote work-request manipulation: the image lives in an
    /// RDMA-writable metadata region that upstream nodes rewrite.
    pub const INDIRECT: u8 = 1 << 3;
}

/// Size of a serialized WQE in the send-queue ring.
pub const WQE_SIZE: u64 = 64;

/// A send-side work queue element.
///
/// Serialized into 64 bytes of registered host memory, so other NICs can
/// rewrite descriptors with plain RDMA WRITEs — the mechanism behind
/// HyperLoop's group primitives.
///
/// Layout:
///
/// | bytes | field |
/// |---|---|
/// | 0 | opcode |
/// | 1 | flags |
/// | 2..4 | reserved |
/// | 4..8 | enable_count (WAIT) |
/// | 8..16 | local_addr |
/// | 16..24 | len |
/// | 24..32 | remote_addr |
/// | 32..40 | compare / immediate |
/// | 40..48 | swap |
/// | 48..52 | wait_cq (WAIT) |
/// | 52..56 | wait_count (WAIT) |
/// | 56..64 | wr_id |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wqe {
    /// What to execute.
    pub opcode: Opcode,
    /// See [`wqe_flags`].
    pub flags: u8,
    /// WAIT: how many following WQEs to hand to the NIC when triggered.
    pub enable_count: u32,
    /// Gather address (or indirect-image address when `INDIRECT` is set).
    pub local_addr: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Target address in the peer's memory (one-sided verbs).
    pub remote_addr: u64,
    /// CAS compare value, or the immediate for `WriteImm`.
    pub compare_or_imm: u64,
    /// CAS swap value.
    pub swap: u64,
    /// WAIT: which local CQ to watch.
    pub wait_cq: u32,
    /// WAIT: how many completions to consume before triggering.
    pub wait_count: u32,
    /// Caller cookie, reported in the completion.
    pub wr_id: u64,
}

impl Default for Wqe {
    fn default() -> Self {
        Wqe {
            opcode: Opcode::Nop,
            flags: wqe_flags::HW_OWNED,
            enable_count: 0,
            local_addr: 0,
            len: 0,
            remote_addr: 0,
            compare_or_imm: 0,
            swap: 0,
            wait_cq: 0,
            wait_count: 0,
            wr_id: 0,
        }
    }
}

impl Wqe {
    /// Serializes into the 64-byte ring format.
    pub fn encode(&self) -> [u8; WQE_SIZE as usize] {
        let mut b = [0u8; WQE_SIZE as usize];
        b[0] = self.opcode as u8;
        b[1] = self.flags;
        b[4..8].copy_from_slice(&self.enable_count.to_le_bytes());
        b[8..16].copy_from_slice(&self.local_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.len.to_le_bytes());
        b[24..32].copy_from_slice(&self.remote_addr.to_le_bytes());
        b[32..40].copy_from_slice(&self.compare_or_imm.to_le_bytes());
        b[40..48].copy_from_slice(&self.swap.to_le_bytes());
        b[48..52].copy_from_slice(&self.wait_cq.to_le_bytes());
        b[52..56].copy_from_slice(&self.wait_count.to_le_bytes());
        b[56..64].copy_from_slice(&self.wr_id.to_le_bytes());
        b
    }

    /// Parses the 64-byte ring format.
    ///
    /// # Errors
    ///
    /// Returns `None` on an unknown opcode byte (a corrupted descriptor).
    pub fn decode(b: &[u8; WQE_SIZE as usize]) -> Option<Wqe> {
        let u32le = |r: std::ops::Range<usize>| u32::from_le_bytes(b[r].try_into().unwrap());
        let u64le = |r: std::ops::Range<usize>| u64::from_le_bytes(b[r].try_into().unwrap());
        Some(Wqe {
            opcode: Opcode::from_u8(b[0])?,
            flags: b[1],
            enable_count: u32le(4..8),
            local_addr: u64le(8..16),
            len: u64le(16..24),
            remote_addr: u64le(24..32),
            compare_or_imm: u64le(32..40),
            swap: u64le(40..48),
            wait_cq: u32le(48..52),
            wait_count: u32le(52..56),
            wr_id: u64le(56..64),
        })
    }

    /// True if the NIC owns this descriptor.
    pub fn is_owned(&self) -> bool {
        self.flags & wqe_flags::HW_OWNED != 0
    }

    /// True if completion should raise a CQE.
    pub fn is_signaled(&self) -> bool {
        self.flags & wqe_flags::SIGNALED != 0
    }

    /// True if this WQE must wait for outstanding reads/atomics.
    pub fn is_fenced(&self) -> bool {
        self.flags & wqe_flags::FENCE != 0
    }

    /// True if the effective descriptor is fetched from host memory.
    pub fn is_indirect(&self) -> bool {
        self.flags & wqe_flags::INDIRECT != 0
    }
}

/// A receive-side work queue element. Posted by the host at setup time (the
/// control path), so it keeps a rich scatter list rather than a byte format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvWqe {
    /// Caller cookie, reported in the completion.
    pub wr_id: u64,
    /// Scatter list: incoming payload fills these `(addr, len)` windows in
    /// order. Pointing an entry at a metadata region (or at send-queue
    /// slots) is what lets an incoming SEND rewrite pre-posted descriptors.
    pub sges: Vec<(u64, u32)>,
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    /// The operation completed.
    Success,
    /// The remote address range was not covered by a registered MR.
    RemoteAccessError,
    /// A local gather/scatter address was out of range.
    LocalAccessError,
    /// The remote CAS target was not 8-byte aligned.
    MisalignedAtomic,
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// Queue pair the completion belongs to.
    pub qp: QpId,
    /// Cookie from the originating WQE.
    pub wr_id: u64,
    /// The completed verb.
    pub opcode: Opcode,
    /// Outcome.
    pub status: CqeStatus,
    /// Bytes moved (receive completions: payload length).
    pub byte_len: u64,
    /// Immediate data (`WriteImm`/`Send` with immediate), if any.
    pub imm: Option<u64>,
}

/// Wire messages between NICs. Internal to the fabric model, public for
/// tests and instrumentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Two-sided send payload.
    Send {
        /// Payload bytes (pooled, shared by reference along the chain).
        payload: Payload,
        /// Optional immediate.
        imm: Option<u64>,
        /// Request sequence for the ack.
        seq: u64,
    },
    /// One-sided write.
    Write {
        /// Destination address at the responder.
        remote_addr: u64,
        /// Payload bytes (pooled, shared by reference along the chain).
        payload: Payload,
        /// Immediate: also consume a RECV and deliver a completion.
        imm: Option<u64>,
        /// Request sequence for the ack.
        seq: u64,
    },
    /// One-sided read request.
    ReadReq {
        /// Source address at the responder.
        remote_addr: u64,
        /// Bytes to read (0 = pure flush).
        len: u64,
        /// Request sequence for the response.
        seq: u64,
    },
    /// Atomic compare-and-swap request.
    CasReq {
        /// Target address (8 bytes) at the responder.
        remote_addr: u64,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
        /// Request sequence for the response.
        seq: u64,
    },
    /// Acknowledgement of a `Send`/`Write`.
    Ack {
        /// Sequence being acknowledged.
        seq: u64,
        /// Outcome at the responder.
        status: CqeStatus,
    },
    /// Response to a `ReadReq`.
    ReadResp {
        /// Sequence being answered.
        seq: u64,
        /// The data read (empty for a flush).
        payload: Payload,
        /// Outcome at the responder.
        status: CqeStatus,
    },
    /// Response to a `CasReq`.
    CasResp {
        /// Sequence being answered.
        seq: u64,
        /// Value found at the target before the operation.
        original: u64,
        /// Outcome at the responder.
        status: CqeStatus,
    },
}

impl Message {
    /// Approximate wire size: payload plus a 64-byte header.
    pub fn wire_bytes(&self) -> u64 {
        64 + match self {
            Message::Send { payload, .. }
            | Message::Write { payload, .. }
            | Message::ReadResp { payload, .. } => payload.len() as u64,
            _ => 0,
        }
    }
}

/// Internal fabric events; the embedder schedules them on its global queue
/// and routes them back into `RdmaFabric::handle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicEvent {
    /// The send-queue engine of a QP should examine its head.
    EngineRun {
        /// Node owning the QP.
        node: NodeId,
        /// The queue pair.
        qp: QpId,
    },
    /// A wire message arrives at a node's NIC for a QP.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Destination queue pair.
        qp: QpId,
        /// The message.
        msg: Message,
    },
}

/// Effects the fabric hands back to the embedder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicEffect {
    /// Schedule this internal event after the attached delay.
    Internal(NicEvent),
    /// A CQE arrived on an armed CQ: the host should be interrupted.
    HostNotify {
        /// Node whose CQ fired.
        node: NodeId,
        /// The CQ.
        cq: CqId,
    },
}

/// Cumulative fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// WQEs executed by all NIC engines.
    pub wqes_executed: u64,
    /// WAIT triggers fired.
    pub waits_triggered: u64,
    /// NIC-cache flushes performed by incoming reads.
    pub nic_flushes: u64,
    /// Completions with error status.
    pub errors: u64,
}

impl FabricStats {
    /// Snapshots every counter into `reg` under a dotted `prefix`.
    pub fn export_into(&self, reg: &mut simcore::MetricsRegistry, prefix: &str) {
        reg.counter_set(&format!("{prefix}.wqes_executed"), self.wqes_executed);
        reg.counter_set(&format!("{prefix}.waits_triggered"), self.waits_triggered);
        reg.counter_set(&format!("{prefix}.nic_flushes"), self.nic_flushes);
        reg.counter_set(&format!("{prefix}.errors"), self.errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wqe_round_trips() {
        let w = Wqe {
            opcode: Opcode::CompareSwap,
            flags: wqe_flags::HW_OWNED | wqe_flags::SIGNALED | wqe_flags::FENCE,
            enable_count: 3,
            local_addr: 0xDEAD_BEEF,
            len: 4096,
            remote_addr: 0xFEED_F00D,
            compare_or_imm: 7,
            swap: 9,
            wait_cq: 2,
            wait_count: 5,
            wr_id: 0x1234_5678_9ABC_DEF0,
        };
        let bytes = w.encode();
        assert_eq!(Wqe::decode(&bytes), Some(w));
    }

    #[test]
    fn flag_helpers() {
        let mut w = Wqe::default();
        assert!(w.is_owned());
        assert!(!w.is_signaled());
        w.flags = wqe_flags::SIGNALED | wqe_flags::INDIRECT;
        assert!(!w.is_owned());
        assert!(w.is_signaled());
        assert!(w.is_indirect());
        assert!(!w.is_fenced());
    }

    #[test]
    fn corrupted_opcode_decodes_to_none() {
        let mut bytes = Wqe::default().encode();
        bytes[0] = 200;
        assert_eq!(Wqe::decode(&bytes), None);
    }

    #[test]
    fn every_opcode_round_trips() {
        for op in [
            Opcode::Send,
            Opcode::Write,
            Opcode::WriteImm,
            Opcode::Read,
            Opcode::CompareSwap,
            Opcode::Wait,
            Opcode::Nop,
        ] {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(7), None);
    }

    #[test]
    fn wire_size_includes_payload() {
        let m = Message::Write {
            remote_addr: 0,
            payload: Payload::copy_from(&[0; 1000]),
            imm: None,
            seq: 1,
        };
        assert_eq!(m.wire_bytes(), 1064);
        let a = Message::Ack {
            seq: 1,
            status: CqeStatus::Success,
        };
        assert_eq!(a.wire_bytes(), 64);
    }

    #[test]
    fn dma_cost_scales() {
        let cfg = NicConfig::default();
        assert_eq!(cfg.dma(0), SimDuration::ZERO);
        // 100 Gbps = 12.5 bytes/ns -> 12500 bytes take 1000 ns.
        assert_eq!(cfg.dma(12_500), SimDuration::from_nanos(1000));
    }

    mod randomized {
        use super::*;
        use simcore::SimRng;

        #[test]
        fn wqe_encode_decode_round_trip() {
            let mut rng = SimRng::new(0x3E57);
            for _ in 0..256 {
                let w = Wqe {
                    opcode: Opcode::from_u8((rng.next_u64() % 7) as u8).unwrap(),
                    flags: rng.next_u64() as u8,
                    enable_count: rng.next_u64() as u32,
                    local_addr: rng.next_u64(),
                    len: rng.next_u64(),
                    remote_addr: rng.next_u64(),
                    compare_or_imm: rng.next_u64(),
                    swap: rng.next_u64(),
                    wait_cq: rng.next_u64() as u32,
                    wait_count: rng.next_u64() as u32,
                    wr_id: rng.next_u64(),
                };
                assert_eq!(Wqe::decode(&w.encode()), Some(w));
            }
        }
    }
}
