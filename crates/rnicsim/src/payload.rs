//! Pooled, reference-counted payload buffers — the zero-copy fastpath.
//!
//! A replicated 1KB gWRITE used to clone its body at every chain hop: the
//! requester NIC gathered it into a fresh `Vec<u8>`, the wire message
//! owned that vector, and every stash/forward/scatter touched the
//! allocator again. [`Payload`] replaces the owned vector with an
//! `Rc<Vec<u8>>` drawn from a thread-local slab: cloning a message is a
//! refcount bump, and dropping the last handle returns the buffer — *and
//! its `Rc` control block* — to the pool, so a steady-state data path
//! performs zero net allocations per operation once warm.
//!
//! # Lifecycle
//!
//! * [`Payload::try_with`] / [`Payload::copy_from`] take a pooled buffer
//!   (count 1), clear it, and fill it — a recycled buffer is always
//!   truncated to zero length before reuse, so stale bytes from a previous
//!   op can never leak into a new one (pinned by the recycle-poisoning
//!   test).
//! * Clones share the buffer read-only; [`Payload`] never exposes `&mut`.
//! * `Drop` of the last handle pushes the still-allocated `Rc` back onto
//!   the pool. Buffers above [`MAX_POOLED_CAPACITY`] and buffers past the
//!   [`MAX_POOLED_BUFFERS`] depth fall through to the allocator, bounding
//!   the slab.
//!
//! The pool is host-side, thread-local state: it changes *where* bytes
//! live, never *what* the simulation computes — same-seed timelines are
//! byte-identical with any pool depth, which is why a process-wide slab is
//! safe in a deterministic simulator.
//!
//! The same slab idea recycles RECV scatter lists ([`take_sges`] /
//! [`recycle_sges`]): rings re-post a `RecvWqe` per operation, and its
//! `Vec<(addr, len)>` is the only remaining per-op allocation on that
//! path.

use std::cell::RefCell;
use std::rc::Rc;

/// Buffers with more capacity than this are not pooled (a one-off bulk
/// copy should not pin megabytes in the slab).
pub const MAX_POOLED_CAPACITY: usize = 64 << 10;
/// Maximum buffers the payload slab retains.
pub const MAX_POOLED_BUFFERS: usize = 256;
/// Maximum scatter lists the SGE slab retains.
const MAX_POOLED_SGES: usize = 256;

thread_local! {
    static PAYLOAD_POOL: RefCell<Vec<Rc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
    static SGE_POOL: RefCell<Vec<Vec<(u64, u32)>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a uniquely-owned pooled buffer, or allocates a fresh one.
fn take_buf() -> Rc<Vec<u8>> {
    PAYLOAD_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Rc::new(Vec::new()))
}

/// Returns a uniquely-owned buffer (control block and all) to the pool.
fn put_buf(buf: Rc<Vec<u8>>) {
    debug_assert_eq!(Rc::strong_count(&buf), 1);
    if buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    PAYLOAD_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Takes a cleared scatter list from the SGE slab (or a fresh one).
pub fn take_sges() -> Vec<(u64, u32)> {
    SGE_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a scatter list's storage to the SGE slab.
pub fn recycle_sges(mut sges: Vec<(u64, u32)>) {
    sges.clear();
    SGE_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED_SGES {
            pool.push(sges);
        }
    });
}

/// Number of buffers currently parked in the payload slab (test hook).
pub fn pool_depth() -> usize {
    PAYLOAD_POOL.with(|p| p.borrow().len())
}

/// An immutable, reference-counted, pool-recycled byte buffer: the body of
/// a wire [`Message`](crate::Message).
///
/// Dereferences to `&[u8]`; equality and ordering compare bytes. Cloning
/// is O(1) (refcount bump) — the zero-copy property that lets one gWRITE
/// body ride a whole replication chain untouched.
pub struct Payload {
    /// `None` only transiently during drop (and for the empty payload —
    /// the empty buffer needs no pool trip).
    data: Option<Rc<Vec<u8>>>,
}

impl Payload {
    /// The empty payload (no buffer, no allocation).
    pub fn empty() -> Payload {
        Payload { data: None }
    }

    /// A pooled copy of `bytes`.
    pub fn copy_from(bytes: &[u8]) -> Payload {
        if bytes.is_empty() {
            return Payload::empty();
        }
        let mut buf = take_buf();
        let v = Rc::get_mut(&mut buf).expect("pooled buffer uniquely owned");
        v.clear();
        v.extend_from_slice(bytes);
        Payload { data: Some(buf) }
    }

    /// A pooled `len`-byte payload filled by `f`, which sees a zeroed
    /// buffer — never a previous op's bytes. On error the buffer returns
    /// to the pool and the error propagates.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns.
    pub fn try_with<Err>(
        len: usize,
        f: impl FnOnce(&mut [u8]) -> Result<(), Err>,
    ) -> Result<Payload, Err> {
        if len == 0 {
            return Ok(Payload::empty());
        }
        let mut buf = take_buf();
        let v = Rc::get_mut(&mut buf).expect("pooled buffer uniquely owned");
        v.clear();
        v.resize(len, 0);
        match f(&mut v[..]) {
            Ok(()) => Ok(Payload { data: Some(buf) }),
            Err(e) => {
                put_buf(buf);
                Err(e)
            }
        }
    }

    /// A pooled `len`-byte payload of zeroes (e.g. a decoded header whose
    /// body travels out of band and only the length matters).
    pub fn zeroed(len: usize) -> Payload {
        Payload::try_with::<std::convert::Infallible>(len, |_| Ok(()))
            .unwrap_or_else(|e| match e {})
    }

    /// A pooled `len`-byte payload filled with `byte` (benchmark op
    /// bodies).
    pub fn filled(byte: u8, len: usize) -> Payload {
        Payload::try_with::<std::convert::Infallible>(len, |buf| {
            buf.fill(byte);
            Ok(())
        })
        .unwrap_or_else(|e| match e {})
    }

    /// Wraps an already-built vector without copying. The vector joins the
    /// pool when the last handle drops.
    pub fn from_vec(v: Vec<u8>) -> Payload {
        if v.is_empty() {
            return Payload::empty();
        }
        Payload {
            data: Some(Rc::new(v)),
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.data.as_deref().map_or(&[], |v| v.as_slice())
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.as_deref().map_or(0, |v| v.len())
    }

    /// True for the empty payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        if let Some(rc) = self.data.take() {
            if Rc::strong_count(&rc) == 1 {
                put_buf(rc);
            }
        }
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload {
            data: self.data.clone(),
        }
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Payload {
        Payload::copy_from(b)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Payload::copy_from(b"hello");
        let b = a.clone();
        assert_eq!(a.as_slice(), b.as_slice());
        // Same backing allocation, not a byte copy.
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn recycled_buffer_never_leaks_stale_bytes() {
        // Fill a large payload with a poison pattern, drop it (returning
        // the buffer to the pool), then take smaller payloads and verify
        // only the new bytes are visible.
        let poison = Payload::copy_from(&[0xAAu8; 4096]);
        drop(poison);
        let clean = Payload::copy_from(b"xy");
        assert_eq!(clean.as_slice(), b"xy");
        let zeroed = Payload::try_with::<()>(64, |buf| {
            assert!(
                buf.iter().all(|&b| b == 0),
                "try_with must present a zeroed buffer, never a previous op's bytes"
            );
            buf[0] = 7;
            Ok(())
        })
        .unwrap();
        assert_eq!(zeroed[0], 7);
        assert!(zeroed[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_payload_allocates_nothing() {
        let e = Payload::empty();
        assert!(e.is_empty());
        assert_eq!(e.as_slice(), b"");
        assert_eq!(e, Payload::copy_from(b""));
    }

    #[test]
    fn last_drop_returns_buffer_to_pool() {
        let before = pool_depth();
        let p = Payload::copy_from(b"pooled");
        let q = p.clone();
        drop(p);
        // A live clone keeps the buffer out of the pool.
        assert_eq!(pool_depth(), before.saturating_sub(1));
        drop(q);
        assert!(pool_depth() > before.saturating_sub(1));
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let big = Payload::copy_from(&vec![1u8; MAX_POOLED_CAPACITY + 1]);
        drop(big);
        // No pooled buffer may exceed the cap.
        PAYLOAD_POOL.with(|p| {
            assert!(p
                .borrow()
                .iter()
                .all(|b| b.capacity() <= MAX_POOLED_CAPACITY));
        });
    }

    #[test]
    fn sge_slab_round_trips_cleared() {
        let mut s = take_sges();
        s.push((64, 128));
        recycle_sges(s);
        let s2 = take_sges();
        assert!(s2.is_empty(), "recycled scatter lists come back cleared");
    }
}
