//! The paper's headline, live: the same replicated write stream through
//! CPU-driven replication and through HyperLoop, on machines crowded with
//! other tenants. Watch the tail.
//!
//! ```text
//! cargo run --release --example multi_tenant_tail
//! ```

use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};

fn main() {
    let opts = MicroOpts {
        ops: 2000,
        warmup: 100,
        ..MicroOpts::default()
    };
    println!("1 KB replicated writes, 3 replicas, 96 co-located tenants/node\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "system", "mean", "p50", "p95", "p99"
    );
    let mut p99 = Vec::new();
    for kind in [SystemKind::NaiveEvent, SystemKind::HyperLoop] {
        let r = run_primitive(kind, gwrite_plan(1024), opts);
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            kind.label(),
            r.latency.mean,
            r.latency.p50,
            r.latency.p95,
            r.latency.p99
        );
        p99.push(r.latency.p99);
    }
    println!(
        "\nHyperLoop cuts the 99th percentile by {:.0}x — replica CPUs never ran.",
        p99[0].as_micros_f64() / p99[1].as_micros_f64()
    );
}
