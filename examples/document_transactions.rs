//! The MongoDB case study end to end: fully-ACID document writes (group
//! lock → journal append → NIC-side log processing → unlock) plus a
//! lock-protected consistent read served by a *backup* replica.
//!
//! ```text
//! cargo run --example document_transactions
//! ```

use hyperloop_repro::docstore::{DocConfig, Document, ReplicatedDocStore};
use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::lock::LockTable;
use hyperloop_repro::hyperloop::reads::ReplicaReader;
use hyperloop_repro::hyperloop::{GroupConfig, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::NicConfig;

fn main() {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        12,
    );
    let replicas = [NodeId(1), NodeId(2), NodeId(3)];
    let group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &replicas, GroupConfig::default())
    });
    sim.run();
    let base = group.client.layout().shared_base;
    // A reader over the same lock table region the store uses (offset 16,
    // 64 words — see DocConfig::control_size).
    let reader_locks = LockTable::new(16, 64);
    let mut reader = drive(&mut sim, |ctx| {
        ReplicaReader::setup(ctx.fab, &group.client, &replicas, reader_locks)
    });
    let mut store = ReplicatedDocStore::new(group.client, DocConfig::default(), 1);

    // A transactional write: the five-phase pipeline runs entirely on NICs.
    let mut doc = Document::with_field(42, "title", b"HyperLoop".to_vec());
    doc.fields.insert("venue".into(), b"SIGCOMM 2018".to_vec());
    let t0 = sim.now();
    drive(&mut sim, |ctx| store.write(ctx, doc.clone()).unwrap());
    let mut committed = Vec::new();
    while committed.is_empty() {
        sim.run();
        committed = drive(&mut sim, |ctx| store.poll(ctx));
    }
    println!(
        "tx {} committed in {} (lock + append + execute + unlock, all NIC-side)",
        committed[0].tx_seq,
        sim.now().since(t0)
    );

    // Every replica can now serve the document.
    for n in 1..=3u32 {
        let got = drive(&mut sim, |ctx| {
            store.replica_read(ctx.fab, NodeId(n), base, 42)
        });
        assert_eq!(got.as_ref(), Some(&doc));
    }
    println!("document present and durable on all three replicas");

    // A lock-protected one-sided read from the MIDDLE replica: the paper's
    // read-scaling story — backups serve consistent reads concurrently.
    // DocConfig layout: control area, then journal, then document slots.
    let db_off = {
        let c = store.config();
        c.control_size() + c.log_size + c.slot_size() * 42
    };
    let token = drive(&mut sim, |ctx| {
        reader.begin(
            store_transport(&mut store),
            ctx,
            1,  // replica index (node2)
            42, // the doc's lock (id % n_locks)
            db_off,
            4 + doc.encoded_len() as u64,
        )
    });
    let mut reads = Vec::new();
    while reads.is_empty() {
        sim.run();
        let acks = drive(&mut sim, |ctx| store_transport(&mut store).poll(ctx));
        reads = drive(&mut sim, |ctx| {
            reader.pump(store_transport(&mut store), ctx, &acks)
        });
    }
    assert_eq!(reads[0].token, token);
    let len = u32::from_le_bytes(reads[0].data[..4].try_into().unwrap()) as usize;
    let read_back = Document::decode(&reads[0].data[4..4 + len]).unwrap();
    assert_eq!(read_back, doc);
    println!(
        "locked one-sided read from backup replica node2 returned {read_back} — \
         no replica CPU involved at any point"
    );
}

/// The store owns the group client; the reader borrows it between ops.
fn store_transport(
    store: &mut ReplicatedDocStore<hyperloop_repro::hyperloop::GroupClient>,
) -> &mut hyperloop_repro::hyperloop::GroupClient {
    &mut store.transport
}
