//! Trace one durable 3-replica gWRITE and export it for Perfetto.
//!
//! ```text
//! cargo run --example trace_op [out.json]
//! ```
//!
//! Prints the per-stage latency breakdown (metadata SEND → per-replica WAIT
//! release → DMA → gFLUSH → ACK) and writes Chrome trace-event JSON that
//! opens directly at <https://ui.perfetto.dev>.

use hyperloop::harness::{drive, fabric_sim};
use hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use netsim::{FabricConfig, NodeId};
use rnicsim::{NicConfig, Payload};
use simcore::simtrace::{chrome_trace_json, op_breakdown, span_tree};
use simcore::Tracer;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or("trace.json".into());

    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        42,
    );
    let tracer = Tracer::enabled(1 << 16);
    sim.model.fab.set_tracer(tracer.clone());
    let replicas = [NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &replicas, GroupConfig::default())
    });
    group.client.set_tracer(tracer.clone());
    sim.run();
    tracer.clear(); // drop setup noise, keep the op alone

    let gen = drive(&mut sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 0,
                    data: Payload::filled(7, 1024),
                    flush: true,
                },
            )
            .expect("issue")
    });
    sim.run();
    drive(&mut sim, |ctx| group.client.poll(ctx));

    let events = tracer.events();
    let bd = op_breakdown(&events, gen).expect("traced op");
    println!(
        "op {gen}: 1 KiB durable gWRITE over 3 replicas — {}",
        bd.total()
    );
    for s in &bd.stages {
        println!("  {:<22} {}", s.label, s.duration());
    }
    println!(
        "\nspan tree:\n{}",
        span_tree(&events, gen).expect("tree").render()
    );

    std::fs::write(&out_path, chrome_trace_json(&events)).expect("write trace");
    println!("wrote {out_path} — open it at https://ui.perfetto.dev");
}
