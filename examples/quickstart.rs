//! Quickstart: wire a HyperLoop group and run the four primitives.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{ExecuteMap, GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};

fn main() {
    // A client machine plus three replica machines on a 56 Gbps fabric.
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        42,
    );
    let replicas = [NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &replicas, GroupConfig::default())
    });
    sim.run();
    println!("chain wired: client -> node1 -> node2 -> node3 -> client");

    // gWRITE + gFLUSH: replicate 'hello' durably to every replica.
    let t0 = sim.now();
    drive(&mut sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 0,
                    data: Payload::copy_from(b"hello, replicated world"),
                    flush: true,
                },
            )
            .expect("issue gWRITE")
    });
    sim.run();
    let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
    println!(
        "gWRITE acked (gen {}) in {} — no replica CPU involved",
        acks[0].gen,
        sim.now().since(t0)
    );
    let base = group.client.layout().shared_base;
    for &n in &replicas {
        let bytes = sim.model.fab.mem(n).read_vec(base, 23).unwrap();
        let durable = sim.model.fab.mem(n).is_durable(base, 23).unwrap();
        println!(
            "  {n}: {:?} (durable: {durable})",
            String::from_utf8_lossy(&bytes)
        );
    }

    // gCAS: take a group lock; the ack carries every replica's original.
    drive(&mut sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Cas {
                    offset: 1024,
                    compare: 0,
                    swap: 77,
                    execute: ExecuteMap::all(3),
                },
            )
            .expect("issue gCAS")
    });
    sim.run();
    let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
    println!(
        "gCAS result map {:?} -> lock acquired group-wide: {}",
        acks[0].result_map,
        acks[0].cas_succeeded(0, ExecuteMap::all(3))
    );

    // gMEMCPY: every replica's NIC copies log bytes into its database.
    drive(&mut sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Memcpy {
                    src: 0,
                    dst: 1 << 20,
                    len: 23,
                    flush: true,
                },
            )
            .expect("issue gMEMCPY")
    });
    sim.run();
    drive(&mut sim, |ctx| group.client.poll(ctx));
    let copied = sim
        .model
        .fab
        .mem(NodeId(2))
        .read_vec(base + (1 << 20), 23)
        .unwrap();
    println!(
        "gMEMCPY applied on node2: {:?}",
        String::from_utf8_lossy(&copied)
    );
    println!("total simulated time: {}", sim.now());
}
