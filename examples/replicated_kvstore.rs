//! A replicated persistent KV store (the RocksDB case study): puts through
//! the NIC-offloaded WAL, checkpointing, a power failure, and recovery.
//!
//! ```text
//! cargo run --example replicated_kvstore
//! ```

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, HyperLoopGroup};
use hyperloop_repro::kvstore::{KvConfig, ReplicatedKv};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::NicConfig;

fn main() {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        7,
    );
    let replicas = [NodeId(1), NodeId(2), NodeId(3)];
    let group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &replicas, GroupConfig::default())
    });
    sim.run();
    let shared_base = group.client.layout().shared_base;
    let mut kv = ReplicatedKv::new(group.client, KvConfig::default());

    // Write a handful of keys; each put is one durable replicated append.
    for (k, v) in [(1u64, "alpha"), (2, "beta"), (3, "gamma")] {
        drive(&mut sim, |ctx| {
            kv.put(ctx, k, v.as_bytes().to_vec()).unwrap()
        });
        sim.run();
        let done = drive(&mut sim, |ctx| kv.poll(ctx));
        println!("put key {k} = {v:?} -> durable on all replicas ({done:?})");
    }

    // Checkpoint: every replica's NIC copies log records into the database
    // region (gMEMCPY) — the periodic dump, off the critical path.
    drive(&mut sim, |ctx| {
        let n = kv.checkpoint(ctx, 16);
        println!("checkpointed {n} records");
    });
    sim.run();
    drive(&mut sim, |ctx| kv.poll(ctx));

    // One more write that stays log-only...
    drive(&mut sim, |ctx| {
        kv.put(ctx, 9, b"log-only".to_vec()).unwrap()
    });
    sim.run();
    drive(&mut sim, |ctx| kv.poll(ctx));

    // ...then node2 loses power. Recovery = durable DB + WAL replay.
    sim.model.fab.mem(NodeId(2)).power_failure();
    println!("node2 power failure!");
    let state = drive(&mut sim, |ctx| {
        kv.recover_state(ctx.fab, NodeId(2), shared_base)
    });
    println!("recovered {} keys from node2's durable bytes:", state.len());
    for (k, v) in &state {
        println!("  key {k} = {:?}", String::from_utf8_lossy(v));
    }
    assert_eq!(state.len(), 4, "all acked writes must survive");
}
