//! Failure handling (paper §5): heartbeats detect a dead replica, the chain
//! re-forms on a fresh node, catch-up copies the state, and writes resume.
//!
//! ```text
//! cargo run --example chain_recovery
//! ```

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::membership::{
    plan_rejoin, ChainView, HeartbeatConfig, HeartbeatMonitor,
};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};

fn main() {
    // Five machines: client, three chain members, one standby.
    let mut sim = fabric_sim(
        5,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        3,
    );
    let members = vec![NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &members, GroupConfig::default())
    });
    sim.run();
    let base = group.client.layout().shared_base;

    // Write some state through the healthy chain.
    for i in 0..5u64 {
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: i * 64,
                        data: Payload::filled(i as u8 + 1, 64),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| group.client.poll(ctx));
    }
    println!("5 writes committed on the healthy chain");

    // Heartbeats: node2 goes silent.
    let mut view = ChainView::new(members);
    let mut monitor = HeartbeatMonitor::new(&view, HeartbeatConfig::default(), sim.now());
    let t = sim.now() + hyperloop_repro::simcore::SimDuration::from_millis(50);
    monitor.beat(NodeId(1), t);
    monitor.beat(NodeId(3), t);
    let suspects = monitor.suspected(t);
    println!("failure detector suspects {suspects:?}");
    assert_eq!(suspects, vec![NodeId(2)]);
    view.remove(NodeId(2));
    monitor.sync_view(&view, t);
    println!(
        "membership epoch now {} with {:?}",
        view.epoch(),
        view.members()
    );

    // Plan the rejoin of the standby node 4.
    let plan = plan_rejoin(&view, NodeId(1), NodeId(4), 5 * 64);
    for step in &plan {
        println!("recovery step: {step:?}");
    }

    // Rebuild the data path over the new membership. The standby's
    // allocator is aligned with the survivors so the new group's layout is
    // symmetric (fresh regions; survivors' old regions are retired).
    let cursor = sim.model.fab.alloc_cursor(NodeId(1));
    sim.model.fab.align_allocator(NodeId(4), cursor);
    view.add_tail(NodeId(4));
    monitor.sync_view(&view, t);
    let mut group2 = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), view.members(), GroupConfig::default())
    });
    sim.run();
    let base2 = group2.client.layout().shared_base;

    // Catch-up copy (control path, host-driven): a survivor's state seeds
    // every member's new region.
    let state = sim.model.fab.mem(NodeId(1)).read_vec(base, 5 * 64).unwrap();
    for &n in view.members() {
        sim.model.fab.mem(n).write_durable(base2, &state).unwrap();
    }
    println!("catch-up copied {} bytes to the new chain", state.len());

    // Resume writes on the repaired chain.
    drive(&mut sim, |ctx| {
        group2
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 5 * 64,
                    data: Payload::filled(6, 64),
                    flush: true,
                },
            )
            .unwrap()
    });
    sim.run();
    let acks = drive(&mut sim, |ctx| group2.client.poll(ctx));
    println!(
        "write committed on the repaired chain (epoch {}, gen {})",
        view.epoch(),
        acks[0].gen
    );
    let recovered = sim.model.fab.mem(NodeId(4)).read_vec(base2, 64).unwrap();
    assert_eq!(recovered, vec![1; 64], "standby carries caught-up state");
    let new_write = sim
        .model
        .fab
        .mem(NodeId(4))
        .read_vec(base2 + 5 * 64, 64)
        .unwrap();
    assert_eq!(new_write, vec![6; 64]);
    println!("standby node4 serves caught-up state and new writes — recovery complete");
}
