//! Durability invariants across the whole stack: an acknowledged flushed
//! write survives a power failure on every replica; recovery reconstructs
//! exactly the acknowledged prefix.

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::kvstore::{KvConfig, ReplicatedKv};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};
use hyperloop_repro::simcore::SimRng;

#[test]
fn acked_flushed_writes_survive_any_single_power_failure() {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        99,
    );
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
    });
    sim.run();
    let base = group.client.layout().shared_base;

    let mut rng = SimRng::new(5);
    let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..40u64 {
        let offset = (i % 16) * 4096;
        let data = vec![(rng.next_u64() & 0xFF) as u8; 256];
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset,
                        data: Payload::copy_from(&data),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        assert_eq!(acks.len(), 1);
        acked.retain(|(o, _)| *o != offset);
        acked.push((offset, data));
    }

    // Fail each replica in turn; every acked write must read back durably.
    for &n in &nodes {
        sim.model.fab.mem(n).power_failure();
        for (offset, data) in &acked {
            let got = sim
                .model
                .fab
                .mem(n)
                .read_vec(base + offset, data.len() as u64)
                .unwrap();
            assert_eq!(&got, data, "lost acked write at {offset} on {n}");
        }
    }
}

#[test]
fn kvstore_recovery_is_exactly_the_acked_prefix() {
    let mut sim = fabric_sim(
        3,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        17,
    );
    let nodes = [NodeId(1), NodeId(2)];
    let group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
    });
    sim.run();
    let base = group.client.layout().shared_base;
    let mut kv = ReplicatedKv::new(group.client, KvConfig::default());

    // Ack 20 writes; then issue 3 more and crash BEFORE their acks return.
    for i in 0..20u64 {
        drive(&mut sim, |ctx| {
            kv.put(ctx, i % 8, vec![i as u8 + 1; 100]).unwrap()
        });
        sim.run();
        drive(&mut sim, |ctx| kv.poll(ctx));
    }
    drive(&mut sim, |ctx| {
        for i in 20..23u64 {
            kv.put(ctx, i % 8, vec![i as u8 + 1; 100]).unwrap();
        }
    });
    // Crash now, mid-flight (no sim.run: nothing has propagated yet).
    sim.model.fab.mem(NodeId(2)).power_failure();

    let state = drive(&mut sim, |ctx| kv.recover_state(ctx.fab, NodeId(2), base));
    // All acked writes present; in-flight ones may be absent but nothing
    // else may appear.
    for i in 0..20u64 {
        let k = i % 8;
        let v = state.get(&k).unwrap_or_else(|| panic!("key {k} missing"));
        // The last acked write for key k is from some i' >= i with i'%8==k.
        assert_eq!(v.len(), 100);
    }
    for (k, v) in &state {
        assert!(*k < 8, "phantom key {k}");
        assert_eq!(v.len(), 100, "phantom value shape for {k}");
    }
}
