//! Live shard migration end to end: a four-shard rack moves shard 0 onto
//! a standby chain in the middle of a closed-loop run.
//!
//! The properties under test are the migration contract from DESIGN.md:
//! no acked write is ever lost (every issued op acks exactly once, the new
//! chain's replicas end the run byte-identical), the pause is local (other
//! shards issue and complete while shard 0's window is open), the whole
//! sequence is deterministic (same seed → byte-identical ack timeline and
//! Chrome trace), and a no-op migration is exactly a no-op (timestamp-
//! identical to a run that never planned one).

use hyperloop_repro::hyperloop::{
    migrate_shard, plan_migration, GroupConfig, GroupOp, HyperLoopGroup, MigrationRun, ShardId,
    ShardSet,
};
use hyperloop_repro::kvstore::{KvConfig, ReplicatedKv, ShardedKv};
use hyperloop_repro::netsim::NodeId;
use hyperloop_repro::rnicsim::Payload;
use hyperloop_repro::simcore::simtrace::{chrome_trace_json, Tracer};
use hyperloop_repro::simcore::{SimRng, SimTime};
use hyperloop_repro::testbed::{drive, Cluster, ClusterConfig, ShardPlacement};

const N_SHARDS: u32 = 4;
const RPS: u32 = 2;
const OPS: u64 = 96;
const CLIENT: NodeId = NodeId(0);

/// What the run should do when it crosses the halfway mark.
#[derive(Clone, Copy, PartialEq)]
enum Mid {
    /// Nothing: the undisturbed baseline.
    Nothing,
    /// The live migration of shard 0 to the standby chain.
    Migrate,
    /// A no-op plan (source chain == target chain) through the driver.
    Noop,
}

/// Completion record: `(shard, gen, acked_at)`.
type Timeline = Vec<(u32, u64, SimTime)>;

struct RunOut {
    timeline: Timeline,
    chrome: String,
    /// Final shard-0 epoch.
    epoch: u64,
    /// Byte images of the standby chain's shard-0 region (post-migration
    /// runs only).
    standby_images: Vec<Vec<u8>>,
}

/// One full run: client + four disjoint 2-replica chains + one standby
/// chain, `OPS` uniform keys closed-loop through a hash-routed `ShardSet`,
/// with `mid` performed once half the load has acked.
fn run(seed: u64, mid: Mid) -> RunOut {
    let cfg = GroupConfig {
        shared_size: 1 << 20,
        ..GroupConfig::default()
    };
    let chains: Vec<Vec<NodeId>> = (0..N_SHARDS)
        .map(|s| (0..RPS).map(|r| NodeId(1 + s * RPS + r)).collect())
        .collect();
    let standby: Vec<NodeId> = (0..RPS).map(|r| NodeId(1 + N_SHARDS * RPS + r)).collect();
    let mut cluster = Cluster::new(
        1 + (N_SHARDS + 1) * RPS,
        4,
        64 << 20,
        ClusterConfig {
            seed,
            ..ClusterConfig::default()
        },
    );
    let tracer = Tracer::enabled(1 << 16);
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .map(|chain| HyperLoopGroup::setup(ctx, CLIENT, chain, cfg))
            .collect()
    });
    let clients: Vec<_> = groups
        .into_iter()
        .map(|g| {
            let mut c = g.client;
            c.set_tracer(tracer.clone());
            c
        })
        .collect();
    let mut set = ShardSet::with_hash_router(clients);
    let mut sim = cluster.into_sim();
    sim.run();

    let mut rng = SimRng::new(seed ^ 0x5AD);
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); N_SHARDS as usize];
    for _ in 0..OPS {
        let key = rng.next_u64();
        queues[set.route(key).0 as usize].push(key);
    }
    let op_for = |key: u64| GroupOp::Write {
        offset: (key % 32) * 16384,
        data: Payload::filled((key & 0xFF) as u8, 256),
        flush: true,
    };

    let mut timeline = Timeline::new();
    let mut done = 0u64;
    let mut mid_done = mid == Mid::Nothing;
    while done < OPS {
        drive(&mut sim, |ctx| {
            for s in 0..N_SHARDS {
                let sid = ShardId(s);
                while set.can_issue_on(sid) {
                    let Some(key) = queues[s as usize].pop() else {
                        break;
                    };
                    set.issue_on(ctx, sid, op_for(key)).expect("window checked");
                }
            }
        });

        if !mid_done && done >= OPS / 2 {
            mid_done = true;
            match mid {
                Mid::Nothing => unreachable!(),
                Mid::Noop => {
                    // Source chain == target chain plans to nothing; the
                    // driver must not touch the sim, the fabric or the set.
                    let plan = plan_migration(
                        ShardId(0),
                        set.epoch(ShardId(0)),
                        &chains[0],
                        &chains[0],
                        cfg.shared_size,
                    );
                    let out = migrate_shard(&mut sim, &mut set, &plan);
                    assert_eq!(out.stats.epoch, 0, "no-op must not bump the epoch");
                    assert_eq!(out.stats.copy_bytes, 0);
                }
                Mid::Migrate => {
                    let plan = plan_migration(
                        ShardId(0),
                        set.epoch(ShardId(0)),
                        &chains[0],
                        &standby,
                        cfg.shared_size,
                    );
                    let run = MigrationRun::begin(&mut sim, &mut set, plan);
                    // The pause is shard-local: another shard both holds
                    // in-flight work and accepts a brand-new op while
                    // shard 0's window is open.
                    assert!(
                        (1..N_SHARDS).any(|s| set.shard(ShardId(s)).in_flight() > 0),
                        "no other shard had work in flight at the pause"
                    );
                    // Fresh shard-0 keys ride out the window in the pen.
                    let mut penned = 0;
                    while penned < 4 {
                        let Some(key) = queues[0].pop() else { break };
                        set.defer_on(ShardId(0), op_for(key)).expect("pen has room");
                        penned += 1;
                    }
                    let outcome = run.finish(&mut sim, &mut set);
                    assert_eq!(outcome.resumed.len(), penned, "pen drain lost ops");
                    for a in outcome.drained {
                        timeline.push((a.shard.0, a.ack.gen, sim.now()));
                        done += 1;
                    }
                }
            }
            continue;
        }

        sim.run();
        let acks = drive(&mut sim, |ctx| set.poll(ctx));
        assert!(!acks.is_empty(), "stalled at {done}/{OPS}");
        for a in acks {
            timeline.push((a.shard.0, a.ack.gen, sim.now()));
            done += 1;
        }
    }
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");
    assert_eq!(set.completed(), OPS, "lost operations");

    let standby_images = if mid == Mid::Migrate {
        let base = set.shard(ShardId(0)).layout().shared_base;
        standby
            .iter()
            .map(|&n| {
                sim.model
                    .fab
                    .mem(n)
                    .read_vec(base, cfg.shared_size)
                    .expect("standby region in bounds")
            })
            .collect()
    } else {
        Vec::new()
    };
    RunOut {
        timeline,
        chrome: chrome_trace_json(&tracer.events()),
        epoch: set.epoch(ShardId(0)),
        standby_images,
    }
}

#[test]
fn live_migration_loses_no_acked_writes() {
    let out = run(0x4A11, Mid::Migrate);
    assert_eq!(out.timeline.len(), OPS as usize, "every op acked");
    assert_eq!(out.epoch, 1, "one cutover, one epoch bump");
    // Every (shard, gen, epoch-implied) ack is unique: nothing acked twice,
    // nothing vanished. Gens restart at the cutover, so pair them with the
    // ack's position relative to the epoch for uniqueness.
    let mut seen = std::collections::HashSet::new();
    for &(shard, gen, at) in &out.timeline {
        assert!(seen.insert((shard, gen, at)), "duplicate ack {shard}/{gen}");
    }
    // The new chain ends the run with byte-identical replicas: state
    // actually moved, and chain replication kept it coherent afterwards.
    assert_eq!(out.standby_images.len(), RPS as usize);
    assert_eq!(
        out.standby_images[0], out.standby_images[1],
        "standby replicas diverged after the migration"
    );
    assert!(
        out.standby_images[0].iter().any(|&b| b != 0),
        "standby chain never received the shard image"
    );
}

#[test]
fn same_seed_same_migration_timeline_and_trace() {
    let a = run(0xD3AD, Mid::Migrate);
    let b = run(0xD3AD, Mid::Migrate);
    assert_eq!(
        a.timeline, b.timeline,
        "same seed must replay the identical ack timeline through a migration"
    );
    assert_eq!(
        a.chrome, b.chrome,
        "same seed must render the byte-identical Chrome trace"
    );
    assert_eq!(a.standby_images, b.standby_images);
}

#[test]
fn noop_migration_is_timestamp_identical_to_no_migration() {
    let base = run(0xBEEF, Mid::Nothing);
    let noop = run(0xBEEF, Mid::Noop);
    assert_eq!(base.epoch, noop.epoch, "no-op must leave the epoch alone");
    assert_eq!(
        base.timeline, noop.timeline,
        "a run containing a no-op migration must be timestamp-identical"
    );
    assert_eq!(base.chrome, noop.chrome);
}

/// The app-level surface: a four-shard `ShardedKv` rebalances shard 0 onto
/// the standby chain mid-run and every acked put stays readable.
#[test]
fn sharded_kv_rebalance_preserves_acked_puts() {
    // The KV store's WAL layout needs the full default shared region.
    let cfg = GroupConfig::default();
    let chains: Vec<Vec<NodeId>> = (0..N_SHARDS)
        .map(|s| (0..RPS).map(|r| NodeId(1 + s * RPS + r)).collect())
        .collect();
    let standby: Vec<NodeId> = (0..RPS).map(|r| NodeId(1 + N_SHARDS * RPS + r)).collect();
    let mut cluster = Cluster::new(
        1 + (N_SHARDS + 1) * RPS,
        4,
        64 << 20,
        ClusterConfig {
            seed: 0x7EBA,
            ..ClusterConfig::default()
        },
    );
    // Sanity: the explicit layout round-trips through the placement layer.
    let placement = ShardPlacement::Explicit(chains.clone());
    assert_eq!(cluster.place_shards(&placement, N_SHARDS, CLIENT), chains);
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .map(|chain| HyperLoopGroup::setup(ctx, CLIENT, chain, cfg))
            .collect()
    });
    let mut kv = ShardedKv::with_hash_router(
        groups
            .into_iter()
            .map(|g| ReplicatedKv::new(g.client, KvConfig::default()))
            .collect(),
    );
    let mut sim = cluster.into_sim();
    sim.run();

    type Acked = std::collections::HashMap<u64, Vec<u8>>;
    fn settle(
        sim: &mut hyperloop_repro::simcore::Simulation<Cluster>,
        kv: &mut ShardedKv<hyperloop_repro::hyperloop::GroupClient>,
        acked: &mut Acked,
        pending: &Acked,
    ) {
        for _ in 0..64 {
            sim.run();
            for (_, put) in drive(sim, |ctx| kv.poll(ctx)) {
                acked.insert(put.key, pending[&put.key].clone());
            }
            if sim.queue.is_empty() {
                break;
            }
        }
    }
    let mut acked: Acked = Acked::new();

    // Phase 1: a spread of puts over every shard, fully settled.
    let mut pending = std::collections::HashMap::new();
    for key in 0..32u64 {
        let value = vec![(key & 0xFF) as u8; 64];
        pending.insert(key, value.clone());
        drive(&mut sim, |ctx| kv.put(ctx, key, value).unwrap());
    }
    settle(&mut sim, &mut kv, &mut acked, &pending);
    assert_eq!(acked.len(), 32, "phase 1 puts all acked");

    // Phase 2: keep the *other* shards busy (ops genuinely in flight),
    // then move shard 0 — the quiesced app-level rebalance only demands
    // that shard 0 itself is idle.
    let mut in_flight_elsewhere = 0;
    let mut key = 32u64;
    while in_flight_elsewhere < 6 {
        if kv.route(key) != ShardId(0) {
            let value = vec![(key & 0xFF) as u8; 64];
            pending.insert(key, value.clone());
            drive(&mut sim, |ctx| kv.put(ctx, key, value).unwrap());
            in_flight_elsewhere += 1;
        }
        key += 1;
    }
    let source = chains[0][0];
    drive(&mut sim, |ctx| {
        let (_old, _new_replicas) = kv.rebalance(ctx, ShardId(0), source, &standby);
    });
    settle(&mut sim, &mut kv, &mut acked, &pending);

    // Phase 3: shard 0 serves from the standby chain.
    let mut on_zero = 0;
    let mut key = 1000u64;
    while on_zero < 4 {
        if kv.route(key) == ShardId(0) {
            let value = vec![(key & 0xFF) as u8; 64];
            pending.insert(key, value.clone());
            drive(&mut sim, |ctx| kv.put(ctx, key, value).unwrap());
            on_zero += 1;
        }
        key += 1;
    }
    settle(&mut sim, &mut kv, &mut acked, &pending);
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");
    assert_eq!(acked.len(), pending.len(), "every put acked");

    // Zero acked-write loss: every acked key reads back with its value,
    // across the move, on whichever chain now owns it.
    for (key, value) in &acked {
        assert_eq!(
            kv.get(*key),
            Some(&value[..]),
            "acked key {key} lost across the rebalance"
        );
    }
}
