//! The §7 extension agrees with the chain: the same writes through
//! NIC-coordinated fan-out and through chain replication produce the same
//! replicated bytes, durably.

use hyperloop_repro::hyperloop::fanout::FanoutGroup;
use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};
use hyperloop_repro::simcore::SimRng;

fn writes(seed: u64, n: u64) -> Vec<(u64, Vec<u8>)> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            (
                (i % 16) * 8192,
                vec![(rng.next_u64() & 0xFF) as u8; rng.gen_range(1..2048) as usize],
            )
        })
        .collect()
}

#[test]
fn fanout_and_chain_converge_to_identical_state() {
    let ws = writes(0xFA, 48);

    // Chain arm: client 0, chain 1-2-3.
    let chain_img = {
        let mut sim = fabric_sim(
            4,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            1,
        );
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let mut group = drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        sim.run();
        let base = group.client.layout().shared_base;
        for (off, data) in &ws {
            drive(&mut sim, |ctx| {
                group
                    .client
                    .issue(
                        ctx,
                        GroupOp::Write {
                            offset: *off,
                            data: Payload::copy_from(data),
                            flush: true,
                        },
                    )
                    .unwrap()
            });
            sim.run();
            drive(&mut sim, |ctx| group.client.poll(ctx));
        }
        sim.model.fab.mem(NodeId(3)).power_failure(); // durable view only
        sim.model
            .fab
            .mem(NodeId(3))
            .read_durable_vec(base, 256 * 1024)
            .unwrap()
    };

    // Fan-out arm: client 0, primary 1, backups 2-3-4.
    let fanout_img = {
        let mut sim = fabric_sim(
            5,
            64 << 20,
            NicConfig::default(),
            FabricConfig::default(),
            2,
        );
        let backups = [NodeId(2), NodeId(3), NodeId(4)];
        let mut group = drive(&mut sim, |ctx| {
            FanoutGroup::setup(ctx, NodeId(0), NodeId(1), &backups, GroupConfig::default())
        });
        sim.run();
        let mut done = 0usize;
        for (off, data) in &ws {
            drive(&mut sim, |ctx| group.client.write(ctx, *off, data, true));
            sim.run();
            done += drive(&mut sim, |ctx| group.client.poll(ctx)).len();
        }
        assert_eq!(done, ws.len());
        sim.model.fab.mem(NodeId(4)).power_failure();
        let base = {
            // Fan-out shared regions start at the same symmetric offset 0
            // on fresh nodes.
            0
        };
        sim.model
            .fab
            .mem(NodeId(4))
            .read_durable_vec(base, 256 * 1024)
            .unwrap()
    };

    assert_eq!(chain_img, fanout_img, "fan-out and chain diverged");
}
