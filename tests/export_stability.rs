//! Metrics-export stability: snapshotting is idempotent.
//!
//! Every `export_into` in the stack snapshots cumulative totals with
//! `counter_set` / `set_gauge`. The historical bug was exporters using
//! `counter_add`, so exporting the same state twice (a bench that writes a
//! table row and then a JSON report, a test that asserts and then dumps)
//! silently doubled every counter. This test drives a real run — including
//! a live shard migration, so the `migration.*` counters are populated —
//! and asserts that exporting twice into the same registry leaves it
//! byte-identical to exporting once.

use hyperloop_repro::hyperloop::{
    plan_migration, GroupConfig, GroupOp, HyperLoopGroup, MigrationRun, ShardId, ShardSet,
};
use hyperloop_repro::netsim::NodeId;
use hyperloop_repro::rnicsim::Payload;
use hyperloop_repro::simcore::jsonw::canonicalize_report;
use hyperloop_repro::simcore::simaudit::op_id_base;
use hyperloop_repro::simcore::{
    Audit, HealthMonitor, MetricsRegistry, SimDuration, SloConfig, Tracer,
};
use hyperloop_repro::testbed::{drive, Cluster, ClusterConfig};

const CLIENT: NodeId = NodeId(0);

/// Runs a 2-shard workload with one live migration and returns everything
/// needed to export: the cluster model, the resolved chains, the set.
fn export_all(
    reg: &mut MetricsRegistry,
    model: &Cluster,
    chains: &[Vec<NodeId>],
    set: &ShardSet<hyperloop_repro::hyperloop::GroupClient>,
    audit: &Audit,
    health: &HealthMonitor,
) {
    model.export_into(reg, "cluster");
    model.export_shards_into(reg, chains, "bench");
    set.export_into(reg, "bench.shards");
    audit.export_into(reg, "audit");
    health.export_into(reg, "health");
}

#[test]
fn exporting_twice_is_idempotent() {
    let cfg = GroupConfig {
        shared_size: 1 << 20,
        ..GroupConfig::default()
    };
    let chains: Vec<Vec<NodeId>> = vec![vec![NodeId(1), NodeId(2)], vec![NodeId(3), NodeId(4)]];
    let standby = vec![NodeId(5), NodeId(6)];
    let mut cluster = Cluster::new(
        7,
        4,
        64 << 20,
        ClusterConfig {
            seed: 0xE4B,
            ..ClusterConfig::default()
        },
    );
    // Auditors tap the run through an audit-only tracer; their export and
    // the health monitor's must be as idempotent as every other exporter.
    let audit = Audit::standard();
    let tracer = Tracer::disabled().with_audit(audit.clone());
    cluster.set_tracer(tracer.clone());
    let health = HealthMonitor::new(SloConfig::default());
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .enumerate()
            .map(|(s, chain)| {
                // Per-shard, epoch-qualified generation bases: the chain
                // order auditor tells the two shards' streams apart by the
                // shard bits of every op id.
                let cfg = GroupConfig {
                    first_gen: op_id_base(s as u32, 0),
                    ..cfg
                };
                HyperLoopGroup::setup(ctx, CLIENT, chain, cfg)
            })
            .collect()
    });
    let mut set = ShardSet::with_hash_router(
        groups
            .into_iter()
            .map(|g| {
                let mut c = g.client;
                c.set_tracer(tracer.clone());
                c
            })
            .collect(),
    );
    let mut sim = cluster.into_sim();
    sim.run();

    // Some traffic on both shards, then a live migration of shard 0 so the
    // migration counters exist in the snapshot too.
    drive(&mut sim, |ctx| {
        for s in 0..2 {
            for k in 0..4u64 {
                set.issue_on(
                    ctx,
                    ShardId(s),
                    GroupOp::Write {
                        offset: k * 8192,
                        data: Payload::copy_from(&[7; 128]),
                        flush: true,
                    },
                )
                .unwrap();
                health.record_issue(ctx.now, s);
            }
        }
    });
    let plan = plan_migration(
        ShardId(0),
        set.epoch(ShardId(0)),
        &chains[0],
        &standby,
        cfg.shared_size,
    );
    let run = MigrationRun::begin(&mut sim, &mut set, plan);
    let outcome = run.finish(&mut sim, &mut set);
    for a in &outcome.drained {
        health.record_ack(sim.now(), a.shard.0, SimDuration::from_micros(10));
    }
    loop {
        sim.run();
        let acks = drive(&mut sim, |ctx| set.poll(ctx));
        for a in &acks {
            health.record_ack(sim.now(), a.shard.0, SimDuration::from_micros(10));
        }
        if set.in_flight() == 0 {
            break;
        }
    }
    health.tick(sim.now());
    let chains_now = vec![standby, chains[1].clone()];

    // Export once into a fresh registry, and twice into another: the two
    // must serialize byte-identically — snapshots set, they never add.
    let mut once = MetricsRegistry::new();
    export_all(&mut once, &sim.model, &chains_now, &set, &audit, &health);
    let mut twice = MetricsRegistry::new();
    export_all(&mut twice, &sim.model, &chains_now, &set, &audit, &health);
    export_all(&mut twice, &sim.model, &chains_now, &set, &audit, &health);
    // Byte-identity goes through the shared report canonicalizer so any
    // volatile host-side fields (wall-clock times) can never fail it.
    assert_eq!(
        canonicalize_report(&once.to_json()).expect("canonicalize once"),
        canonicalize_report(&twice.to_json()).expect("canonicalize twice"),
        "exporting the same state twice changed the registry"
    );

    // The migration counters made it into the snapshot with set semantics.
    assert_eq!(
        twice.counter("bench.shards.shard0.migration.epoch"),
        Some(1)
    );
    assert_eq!(
        twice.counter("bench.shards.shard0.acked"),
        once.counter("bench.shards.shard0.acked")
    );
    // Instantaneous values are gauges, not counters: a second export must
    // not have turned them into accumulating state, and they live on the
    // gauge side of the registry.
    assert_eq!(twice.gauge("bench.shards.shards"), Some(2.0));
    assert_eq!(twice.counter("bench.shards.shards"), None);
    assert_eq!(twice.gauge("bench.shards.shard0.in_flight"), Some(0.0));
    assert!(twice.counter("cluster.fabric.wqes_executed").unwrap() > 0);

    // The audit and health exporters follow the same set/gauge discipline:
    // a clean run snapshots zero violations (per auditor and total), the
    // breach totals are counters, and the per-shard states are gauges —
    // none of them doubled by the second export (the byte-compare above is
    // the real witness; these pin the key names).
    assert_eq!(twice.counter("audit.violations"), Some(0));
    for auditor in ["durability", "chain_order", "flow_control", "migration"] {
        assert_eq!(
            twice.counter(&format!("audit.{auditor}.violations")),
            Some(0),
            "auditor {auditor} missing from the snapshot"
        );
    }
    assert_eq!(
        twice.counter("health.breaches"),
        once.counter("health.breaches")
    );
    for s in 0..2 {
        assert!(
            twice.gauge(&format!("health.shard{s}.state")).is_some(),
            "shard {s} state missing from the health snapshot"
        );
        assert_eq!(twice.counter(&format!("health.shard{s}.acks")), Some(4));
    }
}

/// The transaction manager's export follows the same discipline. A
/// contended two-shard workload populates the txnscope counters — abort
/// causes, backoff draws, per-stripe contention — and exporting the same
/// manager twice must leave the registry byte-identical: every
/// `txn.contention.*` / `txn.abort_causes.*` value is `counter_set`,
/// never added.
#[test]
fn txn_observability_export_is_idempotent() {
    use hyperloop_repro::hyperloop::harness::{drive as hl_drive, fabric_sim};
    use hyperloop_repro::hyperloop::txn::CommitMode;
    use hyperloop_repro::kvstore::{KvConfig, ReplicatedKv, ShardedKv};
    use hyperloop_repro::netsim::FabricConfig;
    use hyperloop_repro::rnicsim::NicConfig;

    let n_shards = 2u32;
    let mut sim = fabric_sim(
        1 + 2 * n_shards,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        29,
    );
    let mut stores = Vec::new();
    for s in 0..n_shards {
        let nodes = [NodeId(1 + 2 * s), NodeId(2 + 2 * s)];
        let group = hl_drive(&mut sim, |ctx| {
            HyperLoopGroup::setup(ctx, CLIENT, &nodes, GroupConfig::default())
        });
        sim.run();
        stores.push(ReplicatedKv::new(group.client, KvConfig::default()));
    }
    let mut kv = ShardedKv::with_hash_router(stores);
    kv.enable_txns(CommitMode::Locking, 23);

    // Two transactions fight over one key so conflicts, parks, and
    // (eventually) per-site contention detail all exist in the snapshot.
    let k = 0u64;
    let mut t1 = kv.txn();
    kv.txn_put(&mut t1, k, b"one".to_vec()).unwrap();
    let mut t2 = kv.txn();
    kv.txn_put(&mut t2, k, b"two".to_vec()).unwrap();
    kv.txn_commit(t1);
    kv.txn_commit(t2);
    for _ in 0..400 {
        sim.run();
        hl_drive(&mut sim, |ctx| {
            kv.poll(ctx);
            kv.pump_txns(ctx)
        });
        if kv.txn_manager().in_flight() == 0 {
            break;
        }
    }
    assert_eq!(kv.txn_manager().in_flight(), 0, "transactions wedged");

    let mgr = kv.txn_manager();
    let mut once = MetricsRegistry::new();
    mgr.export_into(&mut once, "txn");
    let mut twice = MetricsRegistry::new();
    mgr.export_into(&mut twice, "txn");
    mgr.export_into(&mut twice, "txn");
    assert_eq!(
        canonicalize_report(&once.to_json()).expect("canonicalize once"),
        canonicalize_report(&twice.to_json()).expect("canonicalize twice"),
        "exporting the transaction manager twice changed the registry"
    );

    // Pin the txnscope key names with set semantics: the contended run
    // metered the stripe fight, and the abort-cause counters tile the
    // abort total even after the double export.
    assert_eq!(twice.counter("txn.started"), Some(2));
    assert!(twice.counter("txn.contention.attempts").unwrap() >= 2);
    assert!(twice.counter("txn.contention.cas_failures").unwrap() >= 1);
    assert!(twice.counter("txn.contention.conflicts").unwrap() >= 1);
    assert_eq!(twice.counter("txn.contention.false_conflicts"), Some(0));
    assert!(twice.counter("txn.contention.contended_sites").unwrap() >= 1);
    assert!(twice.counter("txn.backoff.parks").unwrap() >= 1);
    let aborted = twice.counter("txn.aborted").unwrap();
    let causes: u64 = [
        "txn.abort_causes.lock_conflict",
        "txn.abort_causes.validation_failed",
        "txn.abort_causes.backoff_exhausted",
    ]
    .iter()
    .map(|k| twice.counter(k).unwrap())
    .sum();
    assert_eq!(causes, aborted, "abort causes must tile txn.aborted");
    // In-flight is instantaneous state: gauge side only.
    assert_eq!(twice.gauge("txn.in_flight"), Some(0.0));
    assert_eq!(twice.counter("txn.in_flight"), None);
}
