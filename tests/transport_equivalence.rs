//! The adoption claim, verified: the same storage code produces identical
//! replicated state over the HyperLoop data path and the Naïve-RDMA
//! baseline — only the latency differs.

use hyperloop_repro::baseline::{NaiveChain, NaiveConfig};
use hyperloop_repro::hyperloop::{
    ExecuteMap, GroupConfig, GroupOp, GroupTransport, HyperLoopGroup, ShardId, ShardSet,
};
use hyperloop_repro::netsim::NodeId;
use hyperloop_repro::rnicsim::Payload;
use hyperloop_repro::simcore::{SimDuration, SimRng};
use hyperloop_repro::testbed::{drive, Cluster};

/// Random but hazard-free sequence: concurrent in-flight operations target
/// disjoint regions (as any real client must — WAL appends go to fresh ring
/// space and shared words are lock-protected; see DESIGN.md).
fn op_sequence(seed: u64, n: usize) -> Vec<GroupOp> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let i = i as u64;
            match rng.gen_range(0..4) {
                // 32 write slots >> the 16-op window: no overlap in flight.
                0 => GroupOp::Write {
                    offset: (i % 32) * 32768,
                    data: Payload::filled((i & 0xFF) as u8, rng.gen_range(1..2048) as usize),
                    flush: true,
                },
                // Lock words live in their own area (never gWRITten).
                1 => GroupOp::Cas {
                    offset: (2 << 20) + (i % 16) * 8,
                    compare: 0,
                    swap: i + 1,
                    execute: ExecuteMap::all(3),
                },
                // Sources are settled write slots; write-write races on dst
                // are ordered identically on every replica.
                2 => GroupOp::Memcpy {
                    src: (i % 32) * 32768,
                    dst: (3 << 20) + (i % 8) * 4096,
                    len: rng.gen_range(1..1024),
                    flush: true,
                },
                _ => GroupOp::Flush {
                    offset: (i % 32) * 32768,
                },
            }
        })
        .collect()
}

/// Runs the sequence and returns each replica's durable shared-region image.
fn run_over<T: GroupTransport + 'static>(
    mut sim: simcore::Simulation<Cluster>,
    mut transport: T,
    shared_base: u64,
    maintain: impl Fn(&mut simcore::Simulation<Cluster>),
    ops: &[GroupOp],
) -> Vec<Vec<u8>> {
    let mut next = 0usize;
    let mut completed = 0usize;
    while completed < ops.len() {
        drive(&mut sim, |ctx| {
            while transport.can_issue() && next < ops.len() {
                transport.issue(ctx, ops[next].clone()).unwrap();
                next += 1;
            }
        });
        let deadline = sim.now() + SimDuration::from_millis(200);
        sim.run_until(deadline);
        completed += drive(&mut sim, |ctx| transport.poll(ctx)).len();
        maintain(&mut sim);
    }
    assert_eq!(sim.model.fab.stats().errors, 0);
    (1..=3)
        .map(|n| {
            // Flush everything so the durable views are comparable even for
            // unflushed residue, then read the durable image.
            sim.model.fab.mem(NodeId(n)).flush_all();
            sim.model
                .fab
                .mem(NodeId(n))
                .read_durable_vec(shared_base, 4 << 20)
                .unwrap()
        })
        .collect()
}

#[test]
fn same_ops_same_state_on_both_transports() {
    let ops = op_sequence(0xE0, 60);

    // HyperLoop arm.
    let hl_images = {
        let mut cluster = Cluster::with_defaults(4, 8);
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let group = cluster.setup_fabric(|ctx| {
            HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
        });
        let shared = group.client.layout().shared_base;
        let replicas = std::cell::RefCell::new(group.replicas);
        let sim = cluster.into_sim();
        run_over(
            sim,
            group.client,
            shared,
            |sim| {
                drive(sim, |ctx| {
                    for r in replicas.borrow_mut().iter_mut() {
                        r.replenish(ctx, 8);
                    }
                });
            },
            &ops,
        )
    };

    // Naïve arm (replica CPUs do the work).
    let naive_images = {
        let mut cluster = Cluster::with_defaults(4, 8);
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let chain = NaiveChain::setup(&mut cluster, NodeId(0), &nodes, NaiveConfig::default());
        let sim = cluster.into_sim();
        run_over(sim, chain.client, 0, |_| {}, &ops)
    };

    // Every replica in each system agrees...
    assert_eq!(hl_images[0], hl_images[1]);
    assert_eq!(hl_images[1], hl_images[2]);
    assert_eq!(naive_images[0], naive_images[1]);
    assert_eq!(naive_images[1], naive_images[2]);
    // ...and the two systems agree with each other.
    assert_eq!(hl_images[0], naive_images[0], "transports diverged");
}

/// A freshly-wired single-group cluster on the default configuration.
fn single_group_cluster() -> (simcore::Simulation<Cluster>, hyperloop::GroupClient) {
    let mut cluster = Cluster::with_defaults(4, 8);
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let group = cluster
        .setup_fabric(|ctx| HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default()));
    let mut sim = cluster.into_sim();
    sim.run();
    (sim, group.client)
}

/// The degenerate-shard claim, verified per-op: a 1-shard [`ShardSet`] is
/// the identity wrapper — same seed, same ops, byte-for-byte the same
/// generations and completion *timestamps* as the bare [`GroupClient`].
#[test]
fn one_shard_set_is_latency_identical_to_single_group() {
    let ops = op_sequence(0xE1, 48);

    // Arm A: the bare single-group client.
    let bare = {
        let (mut sim, mut client) = single_group_cluster();
        let mut timeline = Vec::new();
        let mut next = 0usize;
        while timeline.len() < ops.len() {
            drive(&mut sim, |ctx| {
                while client.can_issue() && next < ops.len() {
                    let gen = client.issue(ctx, ops[next].clone()).unwrap();
                    next += 1;
                    timeline.push((gen, ctx.now, None));
                }
            });
            sim.run();
            for ack in drive(&mut sim, |ctx| client.poll(ctx)) {
                let slot = timeline
                    .iter_mut()
                    .find(|(g, _, done)| *g == ack.gen && done.is_none())
                    .expect("ack matches an issued op");
                slot.2 = Some(sim.now());
            }
            if timeline.iter().any(|(_, _, d)| d.is_none()) {
                continue;
            }
            if next >= ops.len() {
                break;
            }
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
        timeline
    };

    // Arm B: the same client behind a 1-shard ShardSet, driven through the
    // routed path (every key resolves to shard 0).
    let sharded = {
        let (mut sim, client) = single_group_cluster();
        let mut set = ShardSet::with_hash_router(vec![client]);
        let mut timeline = Vec::new();
        let mut next = 0usize;
        while timeline.len() < ops.len() {
            drive(&mut sim, |ctx| {
                while set.can_issue_key(next as u64) && next < ops.len() {
                    let (shard, gen) = set.issue_key(ctx, next as u64, ops[next].clone()).unwrap();
                    assert_eq!(shard, ShardId(0));
                    next += 1;
                    timeline.push((gen, ctx.now, None));
                }
            });
            sim.run();
            for sack in drive(&mut sim, |ctx| set.poll(ctx)) {
                assert_eq!(sack.shard, ShardId(0));
                let slot = timeline
                    .iter_mut()
                    .find(|(g, _, done)| *g == sack.ack.gen && done.is_none())
                    .expect("ack matches an issued op");
                slot.2 = Some(sim.now());
            }
            if timeline.iter().any(|(_, _, d)| d.is_none()) {
                continue;
            }
            if next >= ops.len() {
                break;
            }
        }
        assert_eq!(sim.model.fab.stats().errors, 0);
        assert_eq!(set.completed(), ops.len() as u64);
        timeline
    };

    assert_eq!(
        bare, sharded,
        "1-shard ShardSet must be op-for-op identical to the bare client"
    );
}
