//! hostprof end-to-end: the counting global allocator (installed by the
//! `hyperloop-bench` crate, which this binary links) feeds balanced
//! per-thread deltas, scope timers nest and fold, and — the determinism
//! contract — a same-seed benchmark run serializes byte-identically with
//! host profiling enabled vs disabled once the shared canonicalizer strips
//! the volatile `host.*` fields.

use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};
use hyperloop_bench::report::{Report, Scenario};
use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};
use hyperloop_repro::simcore::hostprof::{self, HostProf};
use hyperloop_repro::simcore::jsonw::canonicalize_report;
use std::sync::Mutex;

/// The enable/disable flag is process-wide (the tables are per-thread), so
/// tests that toggle it must not overlap.
static PROF_FLAG: Mutex<()> = Mutex::new(());

#[test]
fn counting_allocator_balances_and_counts_reallocs_once() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    hostprof::disable();
    let before = hostprof::alloc_snapshot();
    {
        let mut v: Vec<u64> = Vec::new();
        for i in 0..4096 {
            v.push(i); // growth path: realloc, not an alloc+free pair
        }
        std::hint::black_box(&v);
    }
    let delta = hostprof::alloc_snapshot().since(&before);
    // The counting allocator IS installed here (unlike simcore's own unit
    // tests), so the balanced region must show real traffic.
    assert!(delta.allocs > 0, "counting allocator saw no allocations");
    assert!(delta.reallocs > 0, "vec growth should go through realloc");
    assert!(delta.alloc_bytes > 0);
    // Balance: everything allocated in the region was freed in the region,
    // and reallocs were counted once (old size retired, new size charged)
    // rather than as an extra alloc/free pair.
    assert_eq!(delta.allocs, delta.frees, "alloc/free imbalance");
    assert_eq!(
        delta.alloc_bytes, delta.freed_bytes,
        "byte imbalance — realloc double-counted?"
    );
}

#[test]
fn steady_state_gwrite_performs_zero_net_allocations_per_op() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    hostprof::disable();
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        42,
    );
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
    });
    sim.run();

    let mut acks = Vec::new();
    let mut cqes = Vec::new();
    let mut run_one = |sim: &mut _, group: &mut HyperLoopGroup, i: u64| {
        let data = Payload::filled((i & 0xFF) as u8, 1024);
        drive(sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: (i % 64) * 4096,
                        data,
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        acks.clear();
        let n = drive(sim, |ctx| group.client.poll_into(ctx, &mut acks));
        assert_eq!(n, 1, "op {i}: got {n} acks");
        // Off-critical-path maintenance, exactly the maintenance-app idiom:
        // drain the upstream recv CQ and replenish one descriptor chain per
        // consumed completion.
        drive(sim, |ctx| {
            for r in &mut group.replicas {
                cqes.clear();
                ctx.poll_cq_into(r.node(), r.recv_cq(), 64, &mut cqes);
                r.replenish(ctx, cqes.len() as u32);
            }
        });
        sim.run();
    };

    // Warm-up: payload/SGE slabs fill, timer-wheel slots and scratch
    // vectors reach their high-water capacity. The wheel conserves slot
    // buffers by swapping, so capacity keeps migrating between slots for a
    // while — several hundred ops before the last cold slot has grown.
    for i in 0..512u64 {
        run_one(&mut sim, &mut group, i);
    }

    // Steady state: the whole gWRITE fastpath — op construction, gather,
    // wire, chain forwarding, scatter, ack, poll — must recycle every
    // buffer it takes. Net heap growth over the region is zero, which is
    // only possible if each op's allocations are matched by frees.
    let before = hostprof::alloc_snapshot();
    let steady_ops = 256u64;
    for i in 64..64 + steady_ops {
        run_one(&mut sim, &mut group, i);
    }
    let delta = hostprof::alloc_snapshot().since(&before);

    assert_eq!(
        delta.allocs, delta.frees,
        "steady-state gWRITE leaked allocations: {} allocs vs {} frees over {steady_ops} ops",
        delta.allocs, delta.frees
    );
    // Byte traffic balances up to one deliberately growing piece of modeled
    // state: the client NIC's posted-write range list (its acks are never
    // gFLUSHed, and `nic_dirty_bytes` is an exported metric, so the ranges
    // must be kept). That is 16 bytes/op of amortized Vec growth — allow
    // its doubling realloc to land in the window, and nothing more.
    let net = delta.alloc_bytes.saturating_sub(delta.freed_bytes);
    assert!(
        net <= 64 * steady_ops,
        "steady-state gWRITE grew the heap beyond the modeled NIC-cache \
         range list: {} bytes in, {} bytes out (net {net}) over {steady_ops} ops",
        delta.alloc_bytes,
        delta.freed_bytes
    );
}

#[test]
fn scope_timers_nest_under_a_real_run() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    hostprof::reset();
    hostprof::enable();
    {
        let _outer = HostProf::scope("test.outer");
        let opts = MicroOpts {
            ops: 100,
            warmup: 10,
            ..MicroOpts::default()
        };
        let _ = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts);
    }
    hostprof::disable();
    let folded = hostprof::folded_stacks();
    let stats = hostprof::scopes();
    hostprof::reset();
    // The run's own instrumentation folded under our scope: the event queue
    // and the NIC engine are on every op's host path.
    assert!(
        folded.contains("host;test.outer;simcore.queue.pop"),
        "queue pops missing from folded stacks:\n{folded}"
    );
    assert!(
        folded.contains("host;test.outer;rnicsim.engine"),
        "NIC engine scope missing from folded stacks:\n{folded}"
    );
    let pops = stats
        .iter()
        .find(|s| s.path == "test.outer;simcore.queue.pop")
        .expect("pop scope stat");
    assert!(
        pops.calls > 100,
        "expected many queue pops, saw {}",
        pops.calls
    );
    let outer = stats
        .iter()
        .find(|s| s.path == "test.outer")
        .expect("outer scope stat");
    assert!(outer.total_ns >= outer.self_ns);
}

/// One seeded micro run serialized as a full report.
fn report_json(profile: bool) -> String {
    hostprof::reset();
    if profile {
        hostprof::enable();
    } else {
        hostprof::disable();
    }
    let opts = MicroOpts {
        ops: 300,
        warmup: 20,
        ..MicroOpts::default()
    };
    let r = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts);
    hostprof::disable();
    hostprof::reset();
    let mut rep = Report::new("hostprof-identity");
    rep.scenario(
        Scenario::new("identity/gwrite-1KB")
            .system("HyperLoop")
            .seed(opts.seed)
            .config("ops", opts.ops)
            .latency(&r.latency)
            .gauge("ops_per_sec", r.ops_per_sec())
            .gauge("replica_cpu", r.replica_cpu)
            .host(r.host.clone())
            .metrics(r.registry.clone()),
    );
    rep.to_json()
}

#[test]
fn same_seed_reports_are_byte_identical_with_profiling_on_or_off() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let off = report_json(false);
    let on = report_json(true);
    // Raw reports differ only in the volatile host-side numbers; after the
    // shared canonicalizer strips `host.*`, the same seed must produce the
    // same bytes whether the profiler observed the run or not.
    assert_eq!(
        canonicalize_report(&off).expect("canonicalize unprofiled"),
        canonicalize_report(&on).expect("canonicalize profiled"),
        "host profiling perturbed the simulation output"
    );
}
