//! hostprof end-to-end: the counting global allocator (installed by the
//! `hyperloop-bench` crate, which this binary links) feeds balanced
//! per-thread deltas, scope timers nest and fold, and — the determinism
//! contract — a same-seed benchmark run serializes byte-identically with
//! host profiling enabled vs disabled once the shared canonicalizer strips
//! the volatile `host.*` fields.

use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};
use hyperloop_bench::report::{Report, Scenario};
use hyperloop_repro::simcore::hostprof::{self, HostProf};
use hyperloop_repro::simcore::jsonw::canonicalize_report;
use std::sync::Mutex;

/// The enable/disable flag is process-wide (the tables are per-thread), so
/// tests that toggle it must not overlap.
static PROF_FLAG: Mutex<()> = Mutex::new(());

#[test]
fn counting_allocator_balances_and_counts_reallocs_once() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    hostprof::disable();
    let before = hostprof::alloc_snapshot();
    {
        let mut v: Vec<u64> = Vec::new();
        for i in 0..4096 {
            v.push(i); // growth path: realloc, not an alloc+free pair
        }
        std::hint::black_box(&v);
    }
    let delta = hostprof::alloc_snapshot().since(&before);
    // The counting allocator IS installed here (unlike simcore's own unit
    // tests), so the balanced region must show real traffic.
    assert!(delta.allocs > 0, "counting allocator saw no allocations");
    assert!(delta.reallocs > 0, "vec growth should go through realloc");
    assert!(delta.alloc_bytes > 0);
    // Balance: everything allocated in the region was freed in the region,
    // and reallocs were counted once (old size retired, new size charged)
    // rather than as an extra alloc/free pair.
    assert_eq!(delta.allocs, delta.frees, "alloc/free imbalance");
    assert_eq!(
        delta.alloc_bytes, delta.freed_bytes,
        "byte imbalance — realloc double-counted?"
    );
}

#[test]
fn scope_timers_nest_under_a_real_run() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    hostprof::reset();
    hostprof::enable();
    {
        let _outer = HostProf::scope("test.outer");
        let opts = MicroOpts {
            ops: 100,
            warmup: 10,
            ..MicroOpts::default()
        };
        let _ = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts);
    }
    hostprof::disable();
    let folded = hostprof::folded_stacks();
    let stats = hostprof::scopes();
    hostprof::reset();
    // The run's own instrumentation folded under our scope: the event queue
    // and the NIC engine are on every op's host path.
    assert!(
        folded.contains("host;test.outer;simcore.queue.pop"),
        "queue pops missing from folded stacks:\n{folded}"
    );
    assert!(
        folded.contains("host;test.outer;rnicsim.engine"),
        "NIC engine scope missing from folded stacks:\n{folded}"
    );
    let pops = stats
        .iter()
        .find(|s| s.path == "test.outer;simcore.queue.pop")
        .expect("pop scope stat");
    assert!(
        pops.calls > 100,
        "expected many queue pops, saw {}",
        pops.calls
    );
    let outer = stats
        .iter()
        .find(|s| s.path == "test.outer")
        .expect("outer scope stat");
    assert!(outer.total_ns >= outer.self_ns);
}

/// One seeded micro run serialized as a full report.
fn report_json(profile: bool) -> String {
    hostprof::reset();
    if profile {
        hostprof::enable();
    } else {
        hostprof::disable();
    }
    let opts = MicroOpts {
        ops: 300,
        warmup: 20,
        ..MicroOpts::default()
    };
    let r = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts);
    hostprof::disable();
    hostprof::reset();
    let mut rep = Report::new("hostprof-identity");
    rep.scenario(
        Scenario::new("identity/gwrite-1KB")
            .system("HyperLoop")
            .seed(opts.seed)
            .config("ops", opts.ops)
            .latency(&r.latency)
            .gauge("ops_per_sec", r.ops_per_sec())
            .gauge("replica_cpu", r.replica_cpu)
            .host(r.host.clone())
            .metrics(r.registry.clone()),
    );
    rep.to_json()
}

#[test]
fn same_seed_reports_are_byte_identical_with_profiling_on_or_off() {
    let _flag = PROF_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let off = report_json(false);
    let on = report_json(true);
    // Raw reports differ only in the volatile host-side numbers; after the
    // shared canonicalizer strips `host.*`, the same seed must produce the
    // same bytes whether the profiler observed the run or not.
    assert_eq!(
        canonicalize_report(&off).expect("canonicalize unprofiled"),
        canonicalize_report(&on).expect("canonicalize profiled"),
        "host profiling perturbed the simulation output"
    );
}
