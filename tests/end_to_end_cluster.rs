//! Full-stack integration: the paper's headline claims hold on the composed
//! system — flat microsecond tails for HyperLoop under multi-tenant load,
//! milliseconds for the CPU baseline, with replica CPUs (nearly) idle.

use hyperloop_bench::micro::{gwrite_plan, run_primitive, MicroOpts, SystemKind};
use simcore::SimDuration;

fn opts() -> MicroOpts {
    MicroOpts {
        ops: 600,
        warmup: 50,
        ..MicroOpts::default()
    }
}

#[test]
fn hyperloop_tail_is_flat_and_microsecond_scale() {
    let r = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts());
    assert!(
        r.latency.p99 < SimDuration::from_micros(40),
        "HyperLoop p99 blew up: {}",
        r.latency.p99
    );
    // Predictability: p99 within 2x of the median.
    assert!(
        r.latency.p99 < r.latency.p50 * 2,
        "HyperLoop latency not flat: p50={} p99={}",
        r.latency.p50,
        r.latency.p99
    );
    // Replica data-path CPU is (close to) zero: only maintenance runs.
    assert!(
        r.replica_cpu < 0.05,
        "replica CPU should be near zero: {}",
        r.replica_cpu
    );
}

#[test]
fn naive_tail_collapses_under_colocation() {
    let hl = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), opts());
    let naive = run_primitive(SystemKind::NaiveEvent, gwrite_plan(1024), opts());
    assert!(
        naive.latency.p99 > hl.latency.p99 * 50,
        "expected >50x tail gap: naive={} hl={}",
        naive.latency.p99,
        hl.latency.p99
    );
    assert!(
        naive.latency.mean > hl.latency.mean * 5,
        "expected >5x mean gap: naive={} hl={}",
        naive.latency.mean,
        hl.latency.mean
    );
}

#[test]
fn unloaded_throughput_is_comparable_but_cpu_is_not() {
    let o = MicroOpts {
        ops: 2000,
        warmup: 50,
        window: 16,
        hogs_per_node: 0,
        pace: SimDuration::ZERO,
        ..MicroOpts::default()
    };
    let hl = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), o);
    let naive = run_primitive(SystemKind::NaivePolling, gwrite_plan(1024), o);
    // Throughput within ~2x of each other (paper: "similar").
    let ratio = naive.ops_per_sec() / hl.ops_per_sec();
    assert!(
        (0.5..2.5).contains(&ratio),
        "throughput ratio out of band: {ratio:.2}"
    );
    // The polling baseline burns a core; HyperLoop does not.
    assert!(naive.replica_cpu > 0.9, "poller CPU: {}", naive.replica_cpu);
    assert!(hl.replica_cpu < 0.15, "HyperLoop CPU: {}", hl.replica_cpu);
}

#[test]
fn group_size_scaling_stays_flat_for_hyperloop() {
    let mut p99s = Vec::new();
    for gs in [3u32, 5, 7] {
        let o = MicroOpts {
            ops: 400,
            warmup: 40,
            group_size: gs,
            ..MicroOpts::default()
        };
        let r = run_primitive(SystemKind::HyperLoop, gwrite_plan(1024), o);
        p99s.push(r.latency.p99);
    }
    // Longer chains add single-digit microseconds per hop, not blowups.
    assert!(
        p99s[2] < p99s[0] * 3,
        "HyperLoop degraded with group size: {:?}",
        p99s
    );
}
