//! End-to-end simaudit coverage: the full auditor suite rides a real
//! 3-replica durable-gWRITE workload through the whole stack and stays
//! silent, fires on an injected durability fault with the exact offending
//! op id, and serializes byte-identically across same-seed runs.

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};
use hyperloop_repro::simcore::jsonw::canonicalize_report;
use hyperloop_repro::simcore::simaudit::op_id_base;
use hyperloop_repro::simcore::{Audit, SimRng, Tracer};

/// Runs the seeded 3-replica durable-write scenario with the standard
/// auditor suite tapping every trace event and ack, and returns the audit
/// handle for inspection.
fn audited_run(seed: u64) -> Audit {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        seed,
    );
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let audit = Audit::standard();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(
            ctx,
            NodeId(0),
            &nodes,
            GroupConfig {
                first_gen: op_id_base(0, 0),
                ..GroupConfig::default()
            },
        )
    });
    group
        .client
        .set_tracer(Tracer::disabled().with_audit(audit.clone()));
    sim.run();

    let mut rng = SimRng::new(seed ^ 0x5EED);
    for i in 0..40u64 {
        let offset = (i % 16) * 4096;
        let data = Payload::filled((rng.next_u64() & 0xFF) as u8, 256);
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset,
                        data,
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        assert_eq!(acks.len(), 1);
    }
    audit
}

#[test]
fn clean_durable_run_has_zero_violations() {
    let audit = audited_run(99);
    assert_eq!(
        audit.violation_count(),
        0,
        "auditors fired on a clean run:\n{}",
        audit.report()
    );
}

#[test]
fn audit_json_is_deterministic_across_same_seed_runs() {
    let a = audited_run(1234);
    let b = audited_run(1234);
    // Compare through the shared canonicalizer: volatile host fields (none
    // today in audit output, by contract) are stripped before the byte diff.
    assert_eq!(
        canonicalize_report(&a.to_json()).expect("canonicalize a"),
        canonicalize_report(&b.to_json()).expect("canonicalize b"),
        "same-seed runs produced different audit output"
    );
}

#[test]
fn durability_auditor_catches_a_dropped_flush_end_to_end() {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        7,
    );
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let audit = Audit::standard();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(
            ctx,
            NodeId(0),
            &nodes,
            GroupConfig {
                first_gen: op_id_base(0, 0),
                ..GroupConfig::default()
            },
        )
    });
    group
        .client
        .set_tracer(Tracer::disabled().with_audit(audit.clone()));
    sim.run();

    // A few honest durable writes first: the fault must not smear.
    for i in 0..4u64 {
        drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: i * 4096,
                        data: Payload::copy_from(&[0xAB; 512]),
                        flush: true,
                    },
                )
                .unwrap()
        });
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| group.client.poll(ctx)).len(), 1);
    }
    assert_eq!(audit.violation_count(), 0);

    // Drop the flush READ of exactly the next write. The data lands in the
    // replicas' NIC-side volatile cache but is never forced to durable
    // media before the ack — the guarantee the paper's gFLUSH exists to
    // provide, and exactly what the durability auditor watches for.
    group.client.fault_skip_next_flush(1);
    let bad_op = drive(&mut sim, |ctx| {
        group
            .client
            .issue(
                ctx,
                GroupOp::Write {
                    offset: 0x8000,
                    data: Payload::copy_from(&[0xCD; 512]),
                    flush: true,
                },
            )
            .unwrap()
    });
    sim.run();
    assert_eq!(drive(&mut sim, |ctx| group.client.poll(ctx)).len(), 1);

    let violations = audit.violations();
    assert!(
        !violations.is_empty(),
        "durability auditor missed the dropped flush"
    );
    assert!(
        violations.iter().all(|v| v.auditor == "durability"),
        "unexpected auditors fired:\n{}",
        audit.report()
    );
    assert!(
        violations.iter().all(|v| v.op == bad_op),
        "violation blamed the wrong op (want {bad_op}):\n{}",
        audit.report()
    );
}
