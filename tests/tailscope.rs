//! tailscope end-to-end: tail exemplars, root-cause attribution, and the
//! windowed telemetry series, driven through real benchmark runs.
//!
//! Three contracts under test:
//!
//! 1. **Exact accounting** — causes sum to the tail-op count, every
//!    exemplar's stage excesses plus residual tile `e2e - median` exactly,
//!    and exemplars rank slowest-first.
//! 2. **Attribution sanity** — a run with a live migration pins its
//!    slowest ops on `migration_pause`, not on a generic queue cause.
//! 3. **Observer-only** — a traced run and an untraced same-seed run agree
//!    on every simulation-derived output (latency, health, series), and
//!    their reports are byte-identical once the shared canonicalizer
//!    strips the volatile host fields; `tail` itself is trace-gated, so
//!    the identity is checked over the blocks both arms carry.

use hyperloop_bench::migrate::{run_migrate, MigrateOpts};
use hyperloop_bench::report::{Report, Scenario};
use hyperloop_bench::shardscale::{run_shardscale, ShardScaleOpts};
use hyperloop_repro::simcore::jsonw::canonicalize_report;
use hyperloop_repro::simcore::simaudit::SERIES_CAP;
use hyperloop_repro::simcore::tailprof::{TailProfile, CAUSE_LABELS, MAX_EXEMPLARS};

fn assert_tail_invariants(tail: &TailProfile) {
    assert!(tail.ops > 0, "profile folded no ops");
    assert!(tail.tail_ops < tail.ops, "tail cannot cover the population");
    assert!(tail.p99_ns >= tail.median_e2e_ns);

    // Exactly one cause per tail op: the counters sum to the tail count,
    // and every label is one of the seven normative causes.
    let cause_sum: u64 = tail.causes.iter().map(|(_, n)| n).sum();
    assert_eq!(
        cause_sum, tail.tail_ops,
        "cause counters must tile tail ops"
    );
    for (label, _) in &tail.causes {
        assert!(CAUSE_LABELS.contains(label), "unknown cause {label}");
    }

    assert!(tail.exemplars.len() <= MAX_EXEMPLARS);
    assert!(tail.exemplars.len() as u64 <= tail.tail_ops);
    let mut prev_e2e = u64::MAX;
    for ex in &tail.exemplars {
        let e2e = ex.e2e.as_nanos();
        assert!(e2e >= tail.p99_ns, "exemplar below the p99");
        assert!(e2e > tail.median_e2e_ns, "exemplar not beyond the median");
        assert!(e2e <= prev_e2e, "exemplars must rank slowest-first");
        prev_e2e = e2e;
        // Excess tiling is exact by construction (i64 residual).
        assert_eq!(ex.excess_ns, e2e as i64 - tail.median_e2e_ns as i64);
        let explained: i64 = ex.stages.iter().map(|s| s.excess_ns).sum();
        assert_eq!(
            explained + ex.residual_ns,
            ex.excess_ns,
            "stage excesses + residual must tile the op's excess"
        );
        for s in &ex.stages {
            assert_eq!(s.excess_ns, s.actual_ns as i64 - s.median_ns as i64);
        }
        assert!(ex.span.is_some(), "exemplar retains its span tree");
    }
}

#[test]
fn shardscale_tail_profile_holds_its_invariants() {
    let r = run_shardscale(
        2,
        ShardScaleOpts {
            ops: 1024,
            trace: true,
            ..ShardScaleOpts::default()
        },
    );
    let trace = r.trace.as_ref().expect("traced arm carries artifacts");
    assert_tail_invariants(&trace.tail);
    assert!(trace.tail.tail_ops > 0, "a 1024-op run has a tail");

    // The JSON block round-trips its headline counters.
    let json = trace.tail.to_json();
    assert!(json.starts_with('{'), "tail block must be an object");
    for key in ["\"ops\":", "\"tail_ops\":", "\"causes\":", "\"exemplars\":"] {
        assert!(json.contains(key), "tail JSON missing {key}");
    }
}

#[test]
fn migration_pause_dominates_the_migrate_tail() {
    let r = run_migrate(
        2,
        MigrateOpts {
            ops: 1024,
            trace: true,
            ..MigrateOpts::default()
        },
    );
    let tail = r.tail.as_ref().expect("traced arm carries a tail profile");
    assert_tail_invariants(tail);
    // Ops parked in the holding pen across the cutover are the slowest in
    // the run; the attributor must blame the pause, not a queue stage.
    assert!(
        tail.cause_count("migration_pause") > 0,
        "a live migration must surface migration_pause tail ops, got {:?}",
        tail.causes
    );
    // The pause cause carries the epoch as its argument.
    let ex = tail
        .exemplars
        .iter()
        .find(|e| e.cause.label() == "migration_pause")
        .expect("at least one pause exemplar among the slowest");
    assert_eq!(ex.cause.arg(), r.epoch, "pause exemplar carries the epoch");
}

#[test]
fn series_is_bounded_and_strictly_monotonic() {
    let r = run_shardscale(3, ShardScaleOpts::default());
    assert!(!r.series.shards.is_empty(), "series must carry shards");
    for shard in &r.series.shards {
        assert!(shard.points.len() <= SERIES_CAP);
        assert!(!shard.points.is_empty(), "every shard gets sampled");
        let mut prev = None;
        for p in &shard.points {
            if let Some(t) = prev {
                assert!(p.at > t, "series timestamps must strictly increase");
            }
            prev = Some(p.at);
            assert!(p.ops_per_sec.is_finite() && p.ops_per_sec >= 0.0);
        }
    }
}

#[test]
fn tracing_is_observer_only_for_shardscale() {
    let base = run_shardscale(2, ShardScaleOpts::default());
    let traced = run_shardscale(
        2,
        ShardScaleOpts {
            trace: true,
            ..ShardScaleOpts::default()
        },
    );
    // Simulation-derived outputs are identical: the tracer, the tail fold
    // and the counter sampling never touch the event queue or the RNG.
    assert_eq!(base.latency, traced.latency);
    assert_eq!(base.per_shard_acked, traced.per_shard_acked);
    assert_eq!(base.health, traced.health);
    assert_eq!(base.series, traced.series);
    assert_eq!(base.series.to_json(), traced.series.to_json());

    // Byte identity over the blocks both arms carry (tail itself is
    // trace-gated; host fields are volatile and canonicalized away).
    let render = |r: &hyperloop_bench::shardscale::ShardScaleResult| {
        let mut rep = Report::new("tailscope-test");
        rep.scenario(
            Scenario::new("shardscale/2")
                .system("HyperLoop")
                .latency(&r.latency)
                .gauge("ops_per_sec", r.ops_per_sec())
                .health(r.health.clone())
                .series(r.series.clone())
                .host(r.host.clone())
                .metrics(r.registry.clone()),
        );
        canonicalize_report(&rep.to_json()).expect("canonicalize")
    };
    assert_eq!(render(&base), render(&traced));
}
