//! Sharded-cluster integration: four HyperLoop chains behind one router on
//! one simulated rack. Verifies the shard layer's two load-bearing
//! properties end to end: accounting (every issued op acks on the shard
//! that owns its key, and per-shard counts sum to the offered load) and
//! determinism (the same seed replays the identical run, timestamps and
//! all).

use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup, ShardId, ShardSet};
use hyperloop_repro::netsim::NodeId;
use hyperloop_repro::rnicsim::Payload;
use hyperloop_repro::simcore::{SimRng, SimTime};
use hyperloop_repro::testbed::{drive, Cluster, ClusterConfig, ShardPlacement};

const N_SHARDS: u32 = 4;
const REPLICAS_PER_SHARD: u32 = 2;
const OPS: u64 = 96;

/// Completion record: `(shard, gen, acked_at)`.
type Timeline = Vec<(u32, u64, SimTime)>;

/// One full run: a 9-node rack (client + 4 disjoint 2-replica chains),
/// `OPS` uniform-random keys pushed closed-loop through a hash-routed
/// [`ShardSet`]. Returns per-shard `(issued, acked)` counts and the
/// completion timeline.
fn run_sharded(seed: u64) -> (Vec<(u64, u64)>, Timeline) {
    let client = NodeId(0);
    let cluster = Cluster::new(
        1 + N_SHARDS * REPLICAS_PER_SHARD,
        4,
        64 << 20,
        ClusterConfig {
            seed,
            ..ClusterConfig::default()
        },
    );
    let placement = ShardPlacement::RoundRobin {
        replicas_per_shard: REPLICAS_PER_SHARD,
    };
    let chains = cluster.place_shards(&placement, N_SHARDS, client);

    let mut cluster = cluster;
    let groups: Vec<HyperLoopGroup> = cluster.setup_fabric(|ctx| {
        chains
            .iter()
            .map(|chain| HyperLoopGroup::setup(ctx, client, chain, GroupConfig::default()))
            .collect()
    });
    let mut set = ShardSet::with_hash_router(groups.into_iter().map(|g| g.client).collect());
    let mut sim = cluster.into_sim();
    sim.run();

    let mut rng = SimRng::new(seed ^ 0x5AD);
    let keys: Vec<u64> = (0..OPS).map(|_| rng.next_u64()).collect();
    let mut issued_on = vec![0u64; N_SHARDS as usize];
    let mut timeline = Vec::new();
    let mut next = 0usize;
    let mut done = 0u64;
    while done < OPS {
        drive(&mut sim, |ctx| {
            while next < keys.len() && set.can_issue_key(keys[next]) {
                let key = keys[next];
                let (shard, _) = set
                    .issue_key(
                        ctx,
                        key,
                        GroupOp::Write {
                            offset: (key % 32) * 16384,
                            data: Payload::filled((key & 0xFF) as u8, 256),
                            flush: true,
                        },
                    )
                    .unwrap();
                issued_on[shard.0 as usize] += 1;
                next += 1;
            }
            // A full owning shard must not wedge the run: skip ahead only
            // when nothing can issue at all (the poll below frees windows).
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| set.poll(ctx));
        assert!(
            !acks.is_empty() || next >= keys.len(),
            "stalled at {done}/{OPS}"
        );
        for a in acks {
            timeline.push((a.shard.0, a.ack.gen, sim.now()));
            done += 1;
        }
    }
    assert_eq!(sim.model.fab.stats().errors, 0, "data-path errors");
    let counts = (0..N_SHARDS)
        .map(|s| (issued_on[s as usize], set.completed_on(ShardId(s))))
        .collect();
    (counts, timeline)
}

#[test]
fn per_shard_acks_sum_to_issued_ops() {
    let (counts, timeline) = run_sharded(0x4A11);
    // Every shard acked exactly what was issued on it...
    for (s, &(issued, acked)) in counts.iter().enumerate() {
        assert_eq!(issued, acked, "shard {s} lost or invented acks");
    }
    // ...the shard totals sum to the offered load...
    let total: u64 = counts.iter().map(|&(_, a)| a).sum();
    assert_eq!(total, OPS);
    assert_eq!(timeline.len(), OPS as usize);
    // ...and uniform keys actually spread over all four chains.
    assert!(
        counts.iter().all(|&(i, _)| i > 0),
        "{OPS} uniform keys left a shard idle: {counts:?}"
    );
}

#[test]
fn same_seed_same_run() {
    let (counts_a, timeline_a) = run_sharded(0xD3AD);
    let (counts_b, timeline_b) = run_sharded(0xD3AD);
    assert_eq!(counts_a, counts_b, "per-shard accounting diverged");
    assert_eq!(
        timeline_a, timeline_b,
        "same seed must replay the identical completion timeline"
    );
}

#[test]
fn different_seeds_share_routing_but_not_timing() {
    // Routing is a pure function of the key, so two runs over different
    // cluster seeds but the same key stream agree on per-shard counts.
    let (counts_a, _) = run_sharded(0x1111);
    let (counts_b, _) = run_sharded(0x2222);
    let spread_a: Vec<u64> = counts_a.iter().map(|&(i, _)| i).collect();
    let spread_b: Vec<u64> = counts_b.iter().map(|&(i, _)| i).collect();
    // Different key streams (seed feeds the key RNG) — totals still match.
    assert_eq!(spread_a.iter().sum::<u64>(), OPS);
    assert_eq!(spread_b.iter().sum::<u64>(), OPS);
}
