//! Round-trips the Chrome trace emitters through the repo's own JSON
//! reader: `chrome_trace_json` and `chrome_trace_with_counters` must
//! produce documents that `simcore::jsonw::parse` accepts, with correct
//! string escaping, per-track monotonic timestamps, and well-formed
//! `"ph":"C"` counter events.

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::{GroupConfig, GroupOp, HyperLoopGroup};
use hyperloop_repro::netsim::{FabricConfig, NodeId};
use hyperloop_repro::rnicsim::{NicConfig, Payload};
use hyperloop_repro::simcore::jsonw::{canonicalize_report, parse, JsonValue};
use hyperloop_repro::simcore::simprof::{
    chrome_trace_with_counters, CounterSample, CounterSampler, COUNTER_PID,
};
use hyperloop_repro::simcore::simtrace::chrome_trace_json;
use hyperloop_repro::simcore::{MetricsRegistry, SimTime, Tracer};
use std::collections::BTreeMap;

/// Drives a few traced durable gWRITEs and samples fabric metrics.
fn traced_run() -> (
    Vec<hyperloop_repro::simcore::TraceEvent>,
    Vec<CounterSample>,
) {
    let mut sim = fabric_sim(
        4,
        64 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        0xC0FFEE,
    );
    let tracer = Tracer::enabled(1 << 16);
    sim.model.fab.set_tracer(tracer.clone());
    let nodes: Vec<NodeId> = (1..=3).map(NodeId).collect();
    let mut group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &nodes, GroupConfig::default())
    });
    group.client.set_tracer(tracer.clone());
    sim.run();
    tracer.clear();

    let mut sampler = CounterSampler::new();
    for _ in 0..4 {
        let gen = drive(&mut sim, |ctx| {
            group
                .client
                .issue(
                    ctx,
                    GroupOp::Write {
                        offset: 0,
                        data: Payload::copy_from(&[0x5A; 768]),
                        flush: true,
                    },
                )
                .expect("issue")
        });
        sim.run();
        let acks = drive(&mut sim, |ctx| group.client.poll(ctx));
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].gen, gen);
        let mut reg = MetricsRegistry::new();
        sim.model.fab.export_into(&mut reg, "fab");
        sampler.sample(sim.now(), &reg);
    }
    (tracer.events(), sampler.samples().to_vec())
}

/// Walks the parsed envelope and returns the traceEvents array.
fn trace_events(root: &JsonValue) -> Vec<JsonValue> {
    assert_eq!(
        root.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    root.get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array")
        .to_vec()
}

#[test]
fn span_trace_round_trips_through_jsonw() {
    let (events, _) = traced_run();
    assert!(!events.is_empty());
    let json = chrome_trace_json(&events);
    let root = parse(&json).expect("emitter output must re-parse");
    let evs = trace_events(&root);
    assert!(!evs.is_empty());
    for e in &evs {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph:?}");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        if ph != "M" {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        }
    }
}

#[test]
fn counter_trace_round_trips_with_monotonic_tracks() {
    let (events, samples) = traced_run();
    assert!(!samples.is_empty(), "sampler captured fabric counters");
    let json = chrome_trace_with_counters(&events, &samples);
    let root = parse(&json).expect("emitter output must re-parse");
    let evs = trace_events(&root);

    let mut counter_events = 0usize;
    let mut last_ts: BTreeMap<(u64, String), f64> = BTreeMap::new();
    for e in &evs {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        if ph != "C" {
            continue;
        }
        counter_events += 1;
        let pid = e.get("pid").and_then(|v| v.as_u64()).expect("pid");
        assert_eq!(pid, COUNTER_PID, "counter events live on the metrics pid");
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .expect("track name")
            .to_string();
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let value = e
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(|v| v.as_f64())
            .expect("args.value");
        assert!(value.is_finite());
        // Timestamps must be monotonic within each (pid, name) track.
        if let Some(prev) = last_ts.insert((pid, name.clone()), ts) {
            assert!(prev <= ts, "track {name:?} went backwards: {prev} > {ts}");
        }
    }
    assert!(counter_events > 0, "no C events emitted");
    // The metrics process carries its naming metadata record.
    assert!(evs.iter().any(|e| {
        e.get("ph").and_then(|v| v.as_str()) == Some("M")
            && e.get("pid").and_then(|v| v.as_u64()) == Some(COUNTER_PID)
    }));
    // With no samples the envelope degrades to the plain span trace
    // (byte-compared through the shared report canonicalizer).
    assert_eq!(
        canonicalize_report(&chrome_trace_with_counters(&events, &[])).expect("canonicalize"),
        canonicalize_report(&chrome_trace_json(&events)).expect("canonicalize")
    );
}

#[test]
fn track_names_are_escaped_correctly() {
    let awkward = "fab.\"quoted\"\\back\tslash\nname";
    let samples = vec![
        CounterSample {
            at: SimTime::ZERO,
            track: awkward.to_string(),
            value: 1.5,
        },
        CounterSample {
            at: SimTime::from_nanos(2_000),
            track: awkward.to_string(),
            value: -3.0,
        },
    ];
    let json = chrome_trace_with_counters(&[], &samples);
    let root = parse(&json).expect("escaped names must re-parse");
    let evs = trace_events(&root);
    let c: Vec<&JsonValue> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
        .collect();
    assert_eq!(c.len(), 2);
    for e in &c {
        // The reader must recover the exact original track name.
        assert_eq!(e.get("name").and_then(|v| v.as_str()), Some(awkward));
    }
    assert_eq!(
        c[1].get("args")
            .and_then(|a| a.get("value"))
            .and_then(|v| v.as_f64()),
        Some(-3.0)
    );
}
