//! End-to-end recovery: a replica dies mid-service, the failure detector
//! fires, the chain re-forms on a standby, state catches up, and the store
//! keeps serving — with all pre-failure data intact.

use hyperloop_repro::hyperloop::harness::{drive, fabric_sim};
use hyperloop_repro::hyperloop::membership::{ChainView, HeartbeatConfig, HeartbeatMonitor};
use hyperloop_repro::hyperloop::{GroupConfig, HyperLoopGroup};
use hyperloop_repro::kvstore::{KvConfig, ReplicatedKv};
use hyperloop_repro::netsim::NodeId;
use hyperloop_repro::rnicsim::NicConfig;
use hyperloop_repro::simcore::{SimDuration, SimTime};
use netsim::FabricConfig;

#[test]
fn chain_repairs_and_state_survives() {
    // Client 0, chain 1-2-3, standby 4.
    let mut sim = fabric_sim(
        5,
        128 << 20,
        NicConfig::default(),
        FabricConfig::default(),
        61,
    );
    let members = vec![NodeId(1), NodeId(2), NodeId(3)];
    let group = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), &members, GroupConfig::default())
    });
    sim.run();
    let base1 = group.client.layout().shared_base;
    let mut kv = ReplicatedKv::new(group.client, KvConfig::default());

    for i in 0..30u64 {
        drive(&mut sim, |ctx| {
            kv.put(ctx, i % 10, vec![i as u8 + 1; 64]).unwrap()
        });
        sim.run();
        assert_eq!(drive(&mut sim, |ctx| kv.poll(ctx)).len(), 1);
    }

    // Node 3 goes dark; the detector notices.
    let mut view = ChainView::new(members);
    let mut mon = HeartbeatMonitor::new(&view, HeartbeatConfig::default(), sim.now());
    let later = sim.now() + SimDuration::from_millis(40);
    mon.beat(NodeId(1), later);
    mon.beat(NodeId(2), later);
    assert_eq!(mon.suspected(later), vec![NodeId(3)]);
    assert!(view.remove(NodeId(3)));
    mon.sync_view(&view, later);
    assert_eq!(mon.tracked(), 2);

    // Rebuild on [1, 2, 4]: align the standby allocator, wire a new group,
    // catch up from a survivor.
    let cursor = sim.model.fab.alloc_cursor(NodeId(1));
    sim.model.fab.align_allocator(NodeId(4), cursor);
    view.add_tail(NodeId(4));
    mon.sync_view(&view, later);
    assert_eq!(mon.tracked(), 3);

    // Beat through the remove+add_tail cycle: the monitor is keyed by
    // NodeId, so the position shift from removing node 3 cannot
    // mis-attribute a beat, and a straggler beat from the dead node is
    // dropped rather than landing on whoever inherited its position.
    let mut t = later;
    for _ in 0..5 {
        t += SimDuration::from_millis(10);
        mon.beat(NodeId(3), t); // straggler from the removed member
        for &n in view.members() {
            mon.beat(n, t);
        }
        assert!(
            mon.suspected(t).is_empty(),
            "steady beats must keep the repaired chain green"
        );
    }
    // Silence after the cycle still trips the detector for every member.
    let silent = t + SimDuration::from_millis(31);
    assert_eq!(
        mon.suspected(silent),
        vec![NodeId(1), NodeId(2), NodeId(4)],
        "the repaired membership is what the detector watches"
    );
    let group2 = drive(&mut sim, |ctx| {
        HyperLoopGroup::setup(ctx, NodeId(0), view.members(), GroupConfig::default())
    });
    sim.run();
    let base2 = group2.client.layout().shared_base;
    let snapshot = sim
        .model
        .fab
        .mem(NodeId(1))
        .read_vec(base1, 4 << 20)
        .unwrap();
    for &n in view.members() {
        sim.model
            .fab
            .mem(n)
            .write_durable(base2, &snapshot)
            .unwrap();
    }
    // Resume the store over the new group: its logical state (memtable +
    // ring cursors) carries over; only the transport is replaced.
    let old = std::mem::replace(&mut kv.transport, group2.client);
    drop(old);

    for i in 30..45u64 {
        drive(&mut sim, |ctx| {
            kv.put(ctx, i % 10, vec![i as u8 + 1; 64]).unwrap()
        });
        sim.run();
        assert_eq!(
            drive(&mut sim, |ctx| kv.poll(ctx)).len(),
            1,
            "write {i} failed on the repaired chain"
        );
    }

    // The standby's recovered state matches the primary view for every key.
    let state = drive(&mut sim, |ctx| kv.recover_state(ctx.fab, NodeId(4), base2));
    assert_eq!(state.len(), 10);
    for (k, v) in state {
        assert_eq!(
            kv.get(k),
            Some(v.as_slice()),
            "key {k} diverged after repair"
        );
    }
    assert_eq!(sim.model.fab.stats().errors, 0);
    assert!(sim.queue.now().since(SimTime::ZERO) > SimDuration::ZERO);
}
